//! Columnar campaign store: interned struct-of-arrays record layout.
//!
//! The analyses are column scans over visit/call fields, yet
//! `campaign.json` stores row-structs — every `report` run
//! re-deserializes the full world and re-allocates every domain string
//! once per occurrence. This module stores a [`CampaignOutcome`] as
//! parallel arrays with one campaign-wide string-interning table for
//! [`Domain`]s: `party_domains` becomes a range into a shared id
//! vector, every call's caller/caller-site/script-source a `u32`, and
//! booleans bitsets. Rebuilding the outcome clones `Arc`s out of the
//! arena, so equal domains share storage instead of repeating their
//! bytes.
//!
//! # File layout (`campaign.col`)
//!
//! Everything is little-endian:
//!
//! ```text
//! magic "TOPICCOL" | container version u32 | schema version u32
//! started u64      | row counts 8 x u32    | section count u32
//! directory: per section { tag u8, offset u64, len u64, fnv1a u64 }
//! header checksum u64 (FNV-1a over every preceding byte)
//! section payloads, contiguous, in directory order
//! ```
//!
//! The eight sections (`strings`, `errors`, `sites`, `visits`,
//! `parties`, `calls`, `allow`, `probes`) are length-prefixed by the
//! directory and individually checksummed with the same FNV-1a as the
//! shard segments ([`Fnv`]), so truncation, bit-rot, and editing are
//! named errors ([`ColumnarError`]) in the segment taxonomy's style.
//! Sections are decoded lazily and independently — the row counts live
//! in the header, so a reader that only needs the call columns never
//! touches the visit columns — and every decoded section is validated
//! eagerly (enum bytes, id bounds, range bounds), making the scan views
//! infallible.
//!
//! Writes are deterministic: the intern table assigns ids in first-use
//! order of a rank-order walk over the outcome, so the same seed
//! produces byte-identical files across runs, thread counts, and the
//! crawl-vs-sharded-merge paths.

use crate::record::{
    AttestationInfo, AttestationProbe, CampaignOutcome, FaultStats, Phase, SiteOutcome,
    TopicsCallRecord, UnknownSchemaVersion, VisitRecord, CAMPAIGN_SCHEMA_VERSION,
};
use crate::shard::Fnv;
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::sync::OnceLock;
use topics_browser::attestation::AllowDecision;
use topics_browser::observer::CallType;
use topics_net::clock::Timestamp;
use topics_net::domain::Domain;

/// First eight bytes of every columnar campaign file.
pub const COLUMNAR_MAGIC: [u8; 8] = *b"TOPICCOL";

/// Container format version; bumped on incompatible layout change.
/// Distinct from the record schema version, which travels alongside it.
pub const COLUMNAR_VERSION: u32 = 1;

/// Sentinel id for "absent" in optional id columns.
const NONE_ID: u32 = u32::MAX;

const TAG_STRINGS: u8 = 1;
const TAG_ERRORS: u8 = 2;
const TAG_SITES: u8 = 3;
const TAG_VISITS: u8 = 4;
const TAG_PARTIES: u8 = 5;
const TAG_CALLS: u8 = 6;
const TAG_ALLOW: u8 = 7;
const TAG_PROBES: u8 = 8;

/// Canonical section order: every file carries all eight sections.
const SECTION_TAGS: [u8; 8] = [
    TAG_STRINGS,
    TAG_ERRORS,
    TAG_SITES,
    TAG_VISITS,
    TAG_PARTIES,
    TAG_CALLS,
    TAG_ALLOW,
    TAG_PROBES,
];

fn tag_name(tag: u8) -> &'static str {
    match tag {
        TAG_STRINGS => "strings",
        TAG_ERRORS => "errors",
        TAG_SITES => "sites",
        TAG_VISITS => "visits",
        TAG_PARTIES => "parties",
        TAG_CALLS => "calls",
        TAG_ALLOW => "allow",
        TAG_PROBES => "probes",
        _ => "unknown",
    }
}

/// Everything that can be wrong with a columnar file — the same spirit
/// as the segment error taxonomy: named, typed, and specific enough to
/// debug a corrupt store from the message alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnarError {
    /// The buffer ends before the advertised data does.
    Truncated {
        /// Which region was being read.
        section: &'static str,
        /// Bytes the read needed.
        need: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// The file does not start with [`COLUMNAR_MAGIC`].
    BadMagic,
    /// The container version is newer than this build.
    UnsupportedVersion(u32),
    /// The record schema version is newer than this build.
    UnknownSchema(UnknownSchemaVersion),
    /// The header/directory checksum does not match.
    HeaderChecksum {
        /// Digest recorded in the file.
        expected: u64,
        /// Digest of the bytes actually present.
        actual: u64,
    },
    /// A section's payload does not match its directory checksum.
    SectionChecksum {
        /// Section name.
        section: &'static str,
        /// Digest recorded in the directory.
        expected: u64,
        /// Digest of the payload actually present.
        actual: u64,
    },
    /// A required section is absent from the directory.
    MissingSection(&'static str),
    /// A section appears twice in the directory.
    DuplicateSection(&'static str),
    /// A directory entry names a tag this build does not know.
    UnknownSection(u8),
    /// A section decoded fully but left unread bytes behind.
    TrailingData(&'static str),
    /// An enum column holds a byte outside the known variants.
    BadEnum {
        /// Section name.
        section: &'static str,
        /// Column name.
        field: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// An id column references past the end of its target table.
    IdOutOfRange {
        /// Section name.
        section: &'static str,
        /// Column name.
        field: &'static str,
        /// The offending id.
        id: u32,
        /// Length of the table it indexes.
        len: u32,
    },
    /// A (start, len) range column exceeds its target table.
    BadRange {
        /// Section name.
        section: &'static str,
        /// Column name.
        field: &'static str,
    },
    /// An interned string is referenced by no column (referential
    /// integrity: the arena must carry no dead weight).
    OrphanString(u32),
    /// Anything else structurally wrong, with a human-readable reason.
    Malformed(String),
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::Truncated {
                section,
                need,
                have,
            } => write!(
                f,
                "columnar {section}: truncated (need {need} bytes, have {have})"
            ),
            ColumnarError::BadMagic => write!(f, "not a columnar campaign file (bad magic)"),
            ColumnarError::UnsupportedVersion(v) => write!(
                f,
                "columnar container version {v} (this build reads <= {COLUMNAR_VERSION})"
            ),
            ColumnarError::UnknownSchema(e) => write!(f, "{e}"),
            ColumnarError::HeaderChecksum { expected, actual } => write!(
                f,
                "columnar header checksum mismatch: recorded {expected:016x}, computed {actual:016x}"
            ),
            ColumnarError::SectionChecksum {
                section,
                expected,
                actual,
            } => write!(
                f,
                "columnar section {section}: checksum mismatch (recorded {expected:016x}, computed {actual:016x})"
            ),
            ColumnarError::MissingSection(s) => write!(f, "columnar section {s}: missing"),
            ColumnarError::DuplicateSection(s) => write!(f, "columnar section {s}: duplicated"),
            ColumnarError::UnknownSection(t) => write!(f, "columnar directory: unknown section tag {t}"),
            ColumnarError::TrailingData(s) => {
                write!(f, "columnar section {s}: trailing bytes after payload")
            }
            ColumnarError::BadEnum {
                section,
                field,
                value,
            } => write!(f, "columnar {section}.{field}: invalid enum byte {value}"),
            ColumnarError::IdOutOfRange {
                section,
                field,
                id,
                len,
            } => write!(
                f,
                "columnar {section}.{field}: id {id} out of range (table holds {len})"
            ),
            ColumnarError::BadRange { section, field } => {
                write!(f, "columnar {section}.{field}: range exceeds its table")
            }
            ColumnarError::OrphanString(id) => write!(
                f,
                "columnar strings: interned string {id} is referenced by no column"
            ),
            ColumnarError::Malformed(why) => write!(f, "columnar store malformed: {why}"),
        }
    }
}

impl std::error::Error for ColumnarError {}

// ---------------------------------------------------------------------------
// Little-endian primitives.

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// A bounds-checked reader over one section payload.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Cur<'a> {
        Cur {
            buf,
            pos: 0,
            section,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ColumnarError> {
        if self.pos + n > self.buf.len() {
            return Err(ColumnarError::Truncated {
                section: self.section,
                need: n,
                have: self.buf.len() - self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ColumnarError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ColumnarError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ColumnarError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u8s(&mut self, n: usize) -> Result<Vec<u8>, ColumnarError> {
        Ok(self.take(n)?.to_vec())
    }

    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, ColumnarError> {
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn u64s(&mut self, n: usize) -> Result<Vec<u64>, ColumnarError> {
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn bits(&mut self, n: usize) -> Result<Vec<bool>, ColumnarError> {
        let raw = self.take(n.div_ceil(8))?;
        Ok((0..n).map(|i| raw[i / 8] & (1 << (i % 8)) != 0).collect())
    }

    fn done(self) -> Result<(), ColumnarError> {
        if self.pos != self.buf.len() {
            return Err(ColumnarError::TrailingData(self.section));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Enum codes.

fn phase_code(p: Phase) -> u8 {
    match p {
        Phase::BeforeAccept => 0,
        Phase::AfterAccept => 1,
        Phase::AfterReject => 2,
    }
}

fn phase_from(b: u8) -> Option<Phase> {
    match b {
        0 => Some(Phase::BeforeAccept),
        1 => Some(Phase::AfterAccept),
        2 => Some(Phase::AfterReject),
        _ => None,
    }
}

fn call_type_code(c: CallType) -> u8 {
    match c {
        CallType::JavaScript => 0,
        CallType::Fetch => 1,
        CallType::Iframe => 2,
    }
}

fn call_type_from(b: u8) -> Option<CallType> {
    match b {
        0 => Some(CallType::JavaScript),
        1 => Some(CallType::Fetch),
        2 => Some(CallType::Iframe),
        _ => None,
    }
}

fn decision_code(d: AllowDecision) -> u8 {
    match d {
        AllowDecision::AllowedEnrolled => 0,
        AllowDecision::AllowedFailOpen => 1,
        AllowDecision::BlockedNotEnrolled => 2,
        AllowDecision::BlockedFailClosed => 3,
    }
}

fn decision_from(b: u8) -> Option<AllowDecision> {
    match b {
        0 => Some(AllowDecision::AllowedEnrolled),
        1 => Some(AllowDecision::AllowedFailOpen),
        2 => Some(AllowDecision::BlockedNotEnrolled),
        3 => Some(AllowDecision::BlockedFailClosed),
        _ => None,
    }
}

const FAULT_TIMED_OUT: u8 = 1;
const FAULT_SECOND_VISIT_FAILED: u8 = 2;

// ---------------------------------------------------------------------------
// Column groups (in-memory form of the decoded sections).

#[derive(Debug, Clone, Default)]
struct SiteCols {
    rank: Vec<u32>,
    website: Vec<u32>,
    before: Vec<u32>,
    after: Vec<u32>,
    error: Vec<u32>,
    retries: Vec<u32>,
    flags: Vec<u8>,
}

#[derive(Debug, Clone, Default)]
struct VisitCols {
    phase: Vec<u8>,
    website: Vec<u32>,
    final_website: Vec<u32>,
    party_start: Vec<u32>,
    party_len: Vec<u32>,
    object_count: Vec<u32>,
    failed_objects: Vec<u32>,
    call_start: Vec<u32>,
    call_len: Vec<u32>,
    started: Vec<u64>,
    duration_ms: Vec<u64>,
    banner: Vec<bool>,
}

#[derive(Debug, Clone, Default)]
struct CallCols {
    caller: Vec<u32>,
    caller_site: Vec<u32>,
    script_source: Vec<u32>,
    call_type: Vec<u8>,
    decision: Vec<u8>,
    topics_returned: Vec<u32>,
    timestamp: Vec<u64>,
    root_context: Vec<bool>,
}

#[derive(Debug, Clone, Default)]
struct ProbeCols {
    domain: Vec<u32>,
    issued: Vec<u64>,
    valid: Vec<bool>,
    enrollment_site: Vec<bool>,
}

fn fits_u32(n: usize, what: &str) -> u32 {
    u32::try_from(n).unwrap_or_else(|_| panic!("{what} count {n} exceeds the columnar u32 limit"))
}

// ---------------------------------------------------------------------------
// Builder.

/// Streams [`SiteOutcome`]s (in rank order) into column vectors and
/// encodes the canonical byte layout. Used by both
/// [`ColumnarCampaign::from_outcome`] and the shard merge, which feeds
/// sites segment-by-segment without ever materialising the row-struct
/// campaign — the two paths produce byte-identical files.
#[derive(Debug, Default)]
pub struct ColumnarBuilder {
    intern: HashMap<Domain, u32>,
    arena: Vec<Domain>,
    error_ids: HashMap<String, u32>,
    errors: Vec<String>,
    sites: SiteCols,
    visits: VisitCols,
    parties: Vec<u32>,
    calls: CallCols,
}

impl ColumnarBuilder {
    /// An empty builder.
    pub fn new() -> ColumnarBuilder {
        ColumnarBuilder::default()
    }

    fn intern(&mut self, d: &Domain) -> u32 {
        if let Some(&id) = self.intern.get(d) {
            return id;
        }
        let id = fits_u32(self.arena.len(), "interned string");
        self.arena.push(d.clone());
        self.intern.insert(d.clone(), id);
        id
    }

    fn intern_error(&mut self, e: &str) -> u32 {
        if let Some(&id) = self.error_ids.get(e) {
            return id;
        }
        let id = fits_u32(self.errors.len(), "error string");
        self.errors.push(e.to_owned());
        self.error_ids.insert(e.to_owned(), id);
        id
    }

    fn push_visit(&mut self, v: &VisitRecord) -> u32 {
        let idx = fits_u32(self.visits.phase.len(), "visit");
        self.visits.phase.push(phase_code(v.phase));
        let website = self.intern(&v.website);
        self.visits.website.push(website);
        let final_website = self.intern(&v.final_website);
        self.visits.final_website.push(final_website);
        self.visits
            .party_start
            .push(fits_u32(self.parties.len(), "party id"));
        self.visits
            .party_len
            .push(fits_u32(v.party_domains.len(), "party range"));
        for d in &v.party_domains {
            let id = self.intern(d);
            self.parties.push(id);
        }
        self.visits
            .object_count
            .push(fits_u32(v.object_count, "object"));
        self.visits
            .failed_objects
            .push(fits_u32(v.failed_objects, "failed object"));
        self.visits
            .call_start
            .push(fits_u32(self.calls.caller.len(), "call"));
        self.visits
            .call_len
            .push(fits_u32(v.topics_calls.len(), "call range"));
        for c in &v.topics_calls {
            self.push_call(c);
        }
        self.visits.started.push(v.started.0);
        self.visits.duration_ms.push(v.duration_ms);
        self.visits.banner.push(v.banner_found);
        idx
    }

    fn push_call(&mut self, c: &TopicsCallRecord) {
        let caller = self.intern(&c.caller);
        self.calls.caller.push(caller);
        let caller_site = self.intern(&c.caller_site);
        self.calls.caller_site.push(caller_site);
        let script_source = match &c.script_source {
            Some(d) => self.intern(d),
            None => NONE_ID,
        };
        self.calls.script_source.push(script_source);
        self.calls.call_type.push(call_type_code(c.call_type));
        self.calls.decision.push(decision_code(c.decision));
        self.calls
            .topics_returned
            .push(fits_u32(c.topics_returned, "topics_returned"));
        self.calls.timestamp.push(c.timestamp.0);
        self.calls.root_context.push(c.root_context);
    }

    /// Append one site's rows. Call in rank order: the intern table
    /// assigns ids first-use-first, so the push order is part of the
    /// byte-identity contract.
    pub fn push_site(&mut self, site: &SiteOutcome) {
        self.sites.rank.push(fits_u32(site.rank, "rank"));
        let website = self.intern(&site.website);
        self.sites.website.push(website);
        let before = site.before.as_ref().map(|v| self.push_visit(v));
        self.sites.before.push(before.unwrap_or(NONE_ID));
        let after = site.after.as_ref().map(|v| self.push_visit(v));
        self.sites.after.push(after.unwrap_or(NONE_ID));
        let error = site.error.as_deref().map(|e| self.intern_error(e));
        self.sites.error.push(error.unwrap_or(NONE_ID));
        self.sites.retries.push(site.faults.retries);
        let mut flags = 0u8;
        if site.faults.timed_out {
            flags |= FAULT_TIMED_OUT;
        }
        if site.faults.second_visit_failed {
            flags |= FAULT_SECOND_VISIT_FAILED;
        }
        self.sites.flags.push(flags);
    }

    /// Encode the finished campaign. `allow_list` and `probes` arrive
    /// last because the merge only has the full probe set once every
    /// segment has streamed through.
    pub fn finish(
        mut self,
        schema_version: u32,
        allow_list: &[Domain],
        probes: &[AttestationProbe],
        started: Timestamp,
    ) -> ColumnarCampaign {
        let allow: Vec<u32> = allow_list.iter().map(|d| self.intern(d)).collect();
        let mut probe_cols = ProbeCols::default();
        for p in probes {
            let id = self.intern(&p.domain);
            probe_cols.domain.push(id);
            match &p.valid {
                Some(info) => {
                    probe_cols.issued.push(info.issued.0);
                    probe_cols.valid.push(true);
                    probe_cols.enrollment_site.push(info.has_enrollment_site);
                }
                None => {
                    probe_cols.issued.push(0);
                    probe_cols.valid.push(false);
                    probe_cols.enrollment_site.push(false);
                }
            }
        }
        let counts = [
            fits_u32(self.arena.len(), "string"),
            fits_u32(self.errors.len(), "error"),
            fits_u32(self.sites.rank.len(), "site"),
            fits_u32(self.visits.phase.len(), "visit"),
            fits_u32(self.parties.len(), "party"),
            fits_u32(self.calls.caller.len(), "call"),
            fits_u32(allow.len(), "allow-list entry"),
            fits_u32(probe_cols.domain.len(), "probe"),
        ];
        let sections = vec![
            (TAG_STRINGS, encode_strings(&self.arena)),
            (TAG_ERRORS, encode_errors(&self.errors)),
            (TAG_SITES, encode_sites(&self.sites)),
            (TAG_VISITS, encode_visits(&self.visits)),
            (TAG_PARTIES, encode_u32s(&self.parties)),
            (TAG_CALLS, encode_calls(&self.calls)),
            (TAG_ALLOW, encode_u32s(&allow)),
            (TAG_PROBES, encode_probes(&probe_cols)),
        ];
        let bytes = assemble(schema_version, started.0, counts, &sections);
        ColumnarCampaign::decode(bytes)
            .expect("a freshly assembled columnar campaign always decodes")
    }
}

fn encode_strings(arena: &[Domain]) -> Vec<u8> {
    let mut buf = Vec::new();
    for d in arena {
        put_u32(&mut buf, fits_u32(d.as_str().len(), "string length"));
        buf.extend_from_slice(d.as_str().as_bytes());
    }
    buf
}

fn encode_errors(errors: &[String]) -> Vec<u8> {
    let mut buf = Vec::new();
    for e in errors {
        put_u32(&mut buf, fits_u32(e.len(), "error length"));
        buf.extend_from_slice(e.as_bytes());
    }
    buf
}

fn encode_u32s(ids: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(ids.len() * 4);
    for &id in ids {
        put_u32(&mut buf, id);
    }
    buf
}

fn encode_u64s(vals: &[u64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(vals.len() * 8);
    for &v in vals {
        put_u64(&mut buf, v);
    }
    buf
}

fn encode_sites(s: &SiteCols) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&encode_u32s(&s.rank));
    buf.extend_from_slice(&encode_u32s(&s.website));
    buf.extend_from_slice(&encode_u32s(&s.before));
    buf.extend_from_slice(&encode_u32s(&s.after));
    buf.extend_from_slice(&encode_u32s(&s.error));
    buf.extend_from_slice(&encode_u32s(&s.retries));
    buf.extend_from_slice(&s.flags);
    buf
}

fn encode_visits(v: &VisitCols) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&v.phase);
    buf.extend_from_slice(&encode_u32s(&v.website));
    buf.extend_from_slice(&encode_u32s(&v.final_website));
    buf.extend_from_slice(&encode_u32s(&v.party_start));
    buf.extend_from_slice(&encode_u32s(&v.party_len));
    buf.extend_from_slice(&encode_u32s(&v.object_count));
    buf.extend_from_slice(&encode_u32s(&v.failed_objects));
    buf.extend_from_slice(&encode_u32s(&v.call_start));
    buf.extend_from_slice(&encode_u32s(&v.call_len));
    buf.extend_from_slice(&encode_u64s(&v.started));
    buf.extend_from_slice(&encode_u64s(&v.duration_ms));
    buf.extend_from_slice(&pack_bits(&v.banner));
    buf
}

fn encode_calls(c: &CallCols) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&encode_u32s(&c.caller));
    buf.extend_from_slice(&encode_u32s(&c.caller_site));
    buf.extend_from_slice(&encode_u32s(&c.script_source));
    buf.extend_from_slice(&c.call_type);
    buf.extend_from_slice(&c.decision);
    buf.extend_from_slice(&encode_u32s(&c.topics_returned));
    buf.extend_from_slice(&encode_u64s(&c.timestamp));
    buf.extend_from_slice(&pack_bits(&c.root_context));
    buf
}

fn encode_probes(p: &ProbeCols) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&encode_u32s(&p.domain));
    buf.extend_from_slice(&encode_u64s(&p.issued));
    buf.extend_from_slice(&pack_bits(&p.valid));
    buf.extend_from_slice(&pack_bits(&p.enrollment_site));
    buf
}

/// Assemble header + directory + payloads into the canonical file bytes.
fn assemble(
    schema_version: u32,
    started: u64,
    counts: [u32; 8],
    sections: &[(u8, Vec<u8>)],
) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&COLUMNAR_MAGIC);
    put_u32(&mut bytes, COLUMNAR_VERSION);
    put_u32(&mut bytes, schema_version);
    put_u64(&mut bytes, started);
    for c in counts {
        put_u32(&mut bytes, c);
    }
    put_u32(&mut bytes, fits_u32(sections.len(), "section"));
    // Payloads sit back to back, right after the directory + checksum.
    let dir_len = sections.len() * (1 + 8 + 8 + 8);
    let mut offset = (bytes.len() + dir_len + 8) as u64;
    for (tag, payload) in sections {
        bytes.push(*tag);
        put_u64(&mut bytes, offset);
        put_u64(&mut bytes, payload.len() as u64);
        let mut fnv = Fnv::new();
        fnv.update(payload);
        put_u64(&mut bytes, fnv.digest());
        offset += payload.len() as u64;
    }
    let mut fnv = Fnv::new();
    fnv.update(&bytes);
    put_u64(&mut bytes, fnv.digest());
    for (_, payload) in sections {
        bytes.extend_from_slice(payload);
    }
    bytes
}

// ---------------------------------------------------------------------------
// The decoded store.

/// One directory entry, as reported by [`ColumnarCampaign::section_map`]
/// (the doctor's section-by-section integrity rendering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section name (`strings`, `sites`, ...).
    pub name: &'static str,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a digest recorded in the directory.
    pub fnv1a: u64,
}

#[derive(Debug, Clone, Copy)]
struct DirEntry {
    tag: u8,
    offset: u64,
    len: u64,
    fnv1a: u64,
}

// Indexes into the header's row-count array.
const C_STRINGS: usize = 0;
const C_ERRORS: usize = 1;
const C_SITES: usize = 2;
const C_VISITS: usize = 3;
const C_PARTIES: usize = 4;
const C_CALLS: usize = 5;
const C_ALLOW: usize = 6;
const C_PROBES: usize = 7;

type Lazy<T> = OnceLock<Result<T, ColumnarError>>;

/// A campaign in columnar form: the raw file bytes plus lazily decoded,
/// eagerly validated column groups. Section checksums are verified on
/// first touch, so a reader that only scans the call columns never pays
/// for (or trusts) the visit columns.
pub struct ColumnarCampaign {
    bytes: Vec<u8>,
    schema_version: u32,
    started: Timestamp,
    counts: [u32; 8],
    dir: Vec<DirEntry>,
    arena: Lazy<Vec<Domain>>,
    errors: Lazy<Vec<String>>,
    sites: Lazy<SiteCols>,
    visits: Lazy<VisitCols>,
    parties: Lazy<Vec<u32>>,
    calls: Lazy<CallCols>,
    allow: Lazy<Vec<u32>>,
    probes: Lazy<ProbeCols>,
}

impl fmt::Debug for ColumnarCampaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ColumnarCampaign")
            .field("bytes", &self.bytes.len())
            .field("schema_version", &self.schema_version)
            .field("sites", &self.counts[C_SITES])
            .field("visits", &self.counts[C_VISITS])
            .field("calls", &self.counts[C_CALLS])
            .field("strings", &self.counts[C_STRINGS])
            .finish()
    }
}

impl ColumnarCampaign {
    /// Build the columnar form of an outcome (the `crawl --store
    /// columnar` path). Deterministic: same outcome, same bytes.
    pub fn from_outcome(outcome: &CampaignOutcome) -> ColumnarCampaign {
        let mut b = ColumnarBuilder::new();
        for site in &outcome.sites {
            b.push_site(site);
        }
        b.finish(
            outcome.schema_version,
            &outcome.allow_list,
            &outcome.attestation_probes,
            outcome.started,
        )
    }

    /// Parse and validate the header + directory of an encoded file.
    /// Section payloads stay raw until first use.
    pub fn decode(bytes: Vec<u8>) -> Result<ColumnarCampaign, ColumnarError> {
        let fixed = 8 + 4 + 4 + 8 + 8 * 4 + 4;
        if bytes.len() < fixed {
            return Err(ColumnarError::Truncated {
                section: "header",
                need: fixed,
                have: bytes.len(),
            });
        }
        if bytes[..8] != COLUMNAR_MAGIC {
            return Err(ColumnarError::BadMagic);
        }
        let mut cur = Cur::new(&bytes[8..], "header");
        let version = cur.u32()?;
        if version > COLUMNAR_VERSION {
            return Err(ColumnarError::UnsupportedVersion(version));
        }
        let schema_version = cur.u32()?;
        if schema_version > CAMPAIGN_SCHEMA_VERSION {
            return Err(ColumnarError::UnknownSchema(UnknownSchemaVersion {
                found: schema_version,
                supported: CAMPAIGN_SCHEMA_VERSION,
            }));
        }
        let started = Timestamp(cur.u64()?);
        let mut counts = [0u32; 8];
        for c in counts.iter_mut() {
            *c = cur.u32()?;
        }
        let section_count = cur.u32()? as usize;
        let mut dir = Vec::with_capacity(section_count);
        {
            let dir_cur = &mut cur;
            for _ in 0..section_count {
                let tag = dir_cur.u8()?;
                let offset = dir_cur.u64()?;
                let len = dir_cur.u64()?;
                let fnv1a = dir_cur.u64()?;
                dir.push(DirEntry {
                    tag,
                    offset,
                    len,
                    fnv1a,
                });
            }
        }
        let dir_end = 8 + cur.pos;
        let mut fnv = Fnv::new();
        fnv.update(&bytes[..dir_end]);
        let actual = fnv.digest();
        let expected = {
            let mut c = Cur::new(&bytes[dir_end..], "header");
            c.u64()?
        };
        if expected != actual {
            return Err(ColumnarError::HeaderChecksum { expected, actual });
        }

        // The directory must name each known section exactly once, and
        // payloads must tile the rest of the file contiguously in
        // directory order — anything else is trailing or missing data.
        let mut offset = (dir_end + 8) as u64;
        for e in &dir {
            if !SECTION_TAGS.contains(&e.tag) {
                return Err(ColumnarError::UnknownSection(e.tag));
            }
            if dir.iter().filter(|o| o.tag == e.tag).count() > 1 {
                return Err(ColumnarError::DuplicateSection(tag_name(e.tag)));
            }
            if e.offset != offset {
                return Err(ColumnarError::Malformed(format!(
                    "section {} at offset {} where {} was expected",
                    tag_name(e.tag),
                    e.offset,
                    offset
                )));
            }
            offset += e.len;
        }
        for tag in SECTION_TAGS {
            if !dir.iter().any(|e| e.tag == tag) {
                return Err(ColumnarError::MissingSection(tag_name(tag)));
            }
        }
        match offset.cmp(&(bytes.len() as u64)) {
            std::cmp::Ordering::Less => return Err(ColumnarError::TrailingData("file")),
            std::cmp::Ordering::Greater => {
                return Err(ColumnarError::Truncated {
                    section: "file",
                    need: offset as usize,
                    have: bytes.len(),
                })
            }
            std::cmp::Ordering::Equal => {}
        }

        Ok(ColumnarCampaign {
            bytes,
            schema_version,
            started,
            counts,
            dir,
            arena: OnceLock::new(),
            errors: OnceLock::new(),
            sites: OnceLock::new(),
            visits: OnceLock::new(),
            parties: OnceLock::new(),
            calls: OnceLock::new(),
            allow: OnceLock::new(),
            probes: OnceLock::new(),
        })
    }

    /// Load an encoded store from disk — [`ColumnarCampaign::decode`]
    /// over the file's bytes, with I/O errors kept distinct from
    /// corruption: a missing file surfaces as `io::ErrorKind::NotFound`,
    /// a failed decode as `InvalidData` carrying the typed
    /// [`ColumnarError`] message. This is the long-running-service load
    /// path (`topics-lab serve`), which reads the store once and then
    /// answers every query from the decoded arena.
    pub fn read_from(path: &std::path::Path) -> std::io::Result<ColumnarCampaign> {
        let bytes = std::fs::read(path)?;
        ColumnarCampaign::decode(bytes).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad {}: {e}", path.display()),
            )
        })
    }

    /// The canonical encoded bytes (what `campaign.col` holds).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Record schema version from the header.
    pub fn schema_version(&self) -> u32 {
        self.schema_version
    }

    /// Campaign start time from the header.
    pub fn started(&self) -> Timestamp {
        self.started
    }

    /// Number of ranked sites.
    pub fn site_count(&self) -> usize {
        self.counts[C_SITES] as usize
    }

    /// Number of visit rows.
    pub fn visit_count(&self) -> usize {
        self.counts[C_VISITS] as usize
    }

    /// Number of topics-call rows.
    pub fn call_count(&self) -> usize {
        self.counts[C_CALLS] as usize
    }

    /// Number of interned domain strings.
    pub fn domain_count(&self) -> usize {
        self.counts[C_STRINGS] as usize
    }

    /// The section directory (name, payload length, checksum).
    pub fn section_map(&self) -> Vec<SectionInfo> {
        self.dir
            .iter()
            .map(|e| SectionInfo {
                name: tag_name(e.tag),
                len: e.len,
                fnv1a: e.fnv1a,
            })
            .collect()
    }

    /// Checksum-verified raw payload of one section.
    fn section(&self, tag: u8) -> Result<&[u8], ColumnarError> {
        let e = self
            .dir
            .iter()
            .find(|e| e.tag == tag)
            .ok_or(ColumnarError::MissingSection(tag_name(tag)))?;
        let payload = &self.bytes[e.offset as usize..(e.offset + e.len) as usize];
        let mut fnv = Fnv::new();
        fnv.update(payload);
        if fnv.digest() != e.fnv1a {
            return Err(ColumnarError::SectionChecksum {
                section: tag_name(tag),
                expected: e.fnv1a,
                actual: fnv.digest(),
            });
        }
        Ok(payload)
    }

    fn check_id(
        section: &'static str,
        field: &'static str,
        id: u32,
        len: u32,
        optional: bool,
    ) -> Result<(), ColumnarError> {
        if optional && id == NONE_ID {
            return Ok(());
        }
        if id >= len {
            return Err(ColumnarError::IdOutOfRange {
                section,
                field,
                id,
                len,
            });
        }
        Ok(())
    }

    /// The interning arena: every distinct domain, in first-use order.
    pub fn domains(&self) -> Result<&[Domain], ColumnarError> {
        self.arena
            .get_or_init(|| {
                let payload = self.section(TAG_STRINGS)?;
                let n = self.counts[C_STRINGS] as usize;
                let mut cur = Cur::new(payload, "strings");
                let mut arena = Vec::with_capacity(n);
                for i in 0..n {
                    let len = cur.u32()? as usize;
                    let raw = cur.take(len)?;
                    let s = std::str::from_utf8(raw).map_err(|_| {
                        ColumnarError::Malformed(format!("interned string {i} is not UTF-8"))
                    })?;
                    let d = Domain::parse(s).map_err(|e| {
                        ColumnarError::Malformed(format!(
                            "interned string {i} is not a valid domain: {e}"
                        ))
                    })?;
                    arena.push(d);
                }
                cur.done()?;
                Ok(arena)
            })
            .as_ref()
            .map(|v| v.as_slice())
            .map_err(Clone::clone)
    }

    fn error_table(&self) -> Result<&[String], ColumnarError> {
        self.errors
            .get_or_init(|| {
                let payload = self.section(TAG_ERRORS)?;
                let n = self.counts[C_ERRORS] as usize;
                let mut cur = Cur::new(payload, "errors");
                let mut errors = Vec::with_capacity(n);
                for i in 0..n {
                    let len = cur.u32()? as usize;
                    let raw = cur.take(len)?;
                    let s = std::str::from_utf8(raw).map_err(|_| {
                        ColumnarError::Malformed(format!("error string {i} is not UTF-8"))
                    })?;
                    errors.push(s.to_owned());
                }
                cur.done()?;
                Ok(errors)
            })
            .as_ref()
            .map(|v| v.as_slice())
            .map_err(Clone::clone)
    }

    fn site_cols(&self) -> Result<&SiteCols, ColumnarError> {
        self.sites
            .get_or_init(|| {
                let payload = self.section(TAG_SITES)?;
                let n = self.counts[C_SITES] as usize;
                let mut cur = Cur::new(payload, "sites");
                let cols = SiteCols {
                    rank: cur.u32s(n)?,
                    website: cur.u32s(n)?,
                    before: cur.u32s(n)?,
                    after: cur.u32s(n)?,
                    error: cur.u32s(n)?,
                    retries: cur.u32s(n)?,
                    flags: cur.u8s(n)?,
                };
                cur.done()?;
                for &id in &cols.website {
                    Self::check_id("sites", "website", id, self.counts[C_STRINGS], false)?;
                }
                for &v in cols.before.iter().chain(&cols.after) {
                    Self::check_id("sites", "visit", v, self.counts[C_VISITS], true)?;
                }
                for &e in &cols.error {
                    Self::check_id("sites", "error", e, self.counts[C_ERRORS], true)?;
                }
                for &f in &cols.flags {
                    if f & !(FAULT_TIMED_OUT | FAULT_SECOND_VISIT_FAILED) != 0 {
                        return Err(ColumnarError::BadEnum {
                            section: "sites",
                            field: "flags",
                            value: f,
                        });
                    }
                }
                Ok(cols)
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    fn visit_cols(&self) -> Result<&VisitCols, ColumnarError> {
        self.visits
            .get_or_init(|| {
                let payload = self.section(TAG_VISITS)?;
                let n = self.counts[C_VISITS] as usize;
                let mut cur = Cur::new(payload, "visits");
                let cols = VisitCols {
                    phase: cur.u8s(n)?,
                    website: cur.u32s(n)?,
                    final_website: cur.u32s(n)?,
                    party_start: cur.u32s(n)?,
                    party_len: cur.u32s(n)?,
                    object_count: cur.u32s(n)?,
                    failed_objects: cur.u32s(n)?,
                    call_start: cur.u32s(n)?,
                    call_len: cur.u32s(n)?,
                    started: cur.u64s(n)?,
                    duration_ms: cur.u64s(n)?,
                    banner: cur.bits(n)?,
                };
                cur.done()?;
                for &p in &cols.phase {
                    phase_from(p).ok_or(ColumnarError::BadEnum {
                        section: "visits",
                        field: "phase",
                        value: p,
                    })?;
                }
                for &id in cols.website.iter().chain(&cols.final_website) {
                    Self::check_id("visits", "website", id, self.counts[C_STRINGS], false)?;
                }
                for i in 0..n {
                    let pe = u64::from(cols.party_start[i]) + u64::from(cols.party_len[i]);
                    if pe > u64::from(self.counts[C_PARTIES]) {
                        return Err(ColumnarError::BadRange {
                            section: "visits",
                            field: "parties",
                        });
                    }
                    let ce = u64::from(cols.call_start[i]) + u64::from(cols.call_len[i]);
                    if ce > u64::from(self.counts[C_CALLS]) {
                        return Err(ColumnarError::BadRange {
                            section: "visits",
                            field: "calls",
                        });
                    }
                }
                Ok(cols)
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    fn party_ids(&self) -> Result<&[u32], ColumnarError> {
        self.parties
            .get_or_init(|| {
                let payload = self.section(TAG_PARTIES)?;
                let n = self.counts[C_PARTIES] as usize;
                let mut cur = Cur::new(payload, "parties");
                let ids = cur.u32s(n)?;
                cur.done()?;
                for &id in &ids {
                    Self::check_id("parties", "domain", id, self.counts[C_STRINGS], false)?;
                }
                Ok(ids)
            })
            .as_ref()
            .map(|v| v.as_slice())
            .map_err(Clone::clone)
    }

    fn call_cols(&self) -> Result<&CallCols, ColumnarError> {
        self.calls
            .get_or_init(|| {
                let payload = self.section(TAG_CALLS)?;
                let n = self.counts[C_CALLS] as usize;
                let mut cur = Cur::new(payload, "calls");
                let cols = CallCols {
                    caller: cur.u32s(n)?,
                    caller_site: cur.u32s(n)?,
                    script_source: cur.u32s(n)?,
                    call_type: cur.u8s(n)?,
                    decision: cur.u8s(n)?,
                    topics_returned: cur.u32s(n)?,
                    timestamp: cur.u64s(n)?,
                    root_context: cur.bits(n)?,
                };
                cur.done()?;
                for &id in cols.caller.iter().chain(&cols.caller_site) {
                    Self::check_id("calls", "caller", id, self.counts[C_STRINGS], false)?;
                }
                for &id in &cols.script_source {
                    Self::check_id("calls", "script_source", id, self.counts[C_STRINGS], true)?;
                }
                for &t in &cols.call_type {
                    call_type_from(t).ok_or(ColumnarError::BadEnum {
                        section: "calls",
                        field: "call_type",
                        value: t,
                    })?;
                }
                for &d in &cols.decision {
                    decision_from(d).ok_or(ColumnarError::BadEnum {
                        section: "calls",
                        field: "decision",
                        value: d,
                    })?;
                }
                Ok(cols)
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Allow-list intern ids, in list order — indexes into
    /// [`ColumnarCampaign::domains`].
    pub fn allow_ids(&self) -> Result<&[u32], ColumnarError> {
        self.allow
            .get_or_init(|| {
                let payload = self.section(TAG_ALLOW)?;
                let n = self.counts[C_ALLOW] as usize;
                let mut cur = Cur::new(payload, "allow");
                let ids = cur.u32s(n)?;
                cur.done()?;
                for &id in &ids {
                    Self::check_id("allow", "domain", id, self.counts[C_STRINGS], false)?;
                }
                Ok(ids)
            })
            .as_ref()
            .map(|v| v.as_slice())
            .map_err(Clone::clone)
    }

    fn probe_cols(&self) -> Result<&ProbeCols, ColumnarError> {
        self.probes
            .get_or_init(|| {
                let payload = self.section(TAG_PROBES)?;
                let n = self.counts[C_PROBES] as usize;
                let mut cur = Cur::new(payload, "probes");
                let cols = ProbeCols {
                    domain: cur.u32s(n)?,
                    issued: cur.u64s(n)?,
                    valid: cur.bits(n)?,
                    enrollment_site: cur.bits(n)?,
                };
                cur.done()?;
                for &id in &cols.domain {
                    Self::check_id("probes", "domain", id, self.counts[C_STRINGS], false)?;
                }
                Ok(cols)
            })
            .as_ref()
            .map_err(Clone::clone)
    }
}

// ---------------------------------------------------------------------------
// Query layer: zero-copy scans over the validated columns.

impl ColumnarCampaign {
    /// Scan handle over the visit columns (decodes `strings`, `visits`,
    /// `parties` on first use; never touches calls/sites/probes).
    pub fn visits(&self) -> Result<VisitScan<'_>, ColumnarError> {
        Ok(VisitScan {
            arena: self.domains()?,
            v: self.visit_cols()?,
            parties: self.party_ids()?,
        })
    }

    /// Scan handle over the call columns (decodes `strings`, `calls`).
    pub fn calls(&self) -> Result<CallScan<'_>, ColumnarError> {
        Ok(CallScan {
            arena: self.domains()?,
            c: self.call_cols()?,
        })
    }

    /// Scan handle over the per-site columns (decodes `strings`,
    /// `sites`, `errors`).
    pub fn sites(&self) -> Result<SiteScan<'_>, ColumnarError> {
        Ok(SiteScan {
            arena: self.domains()?,
            s: self.site_cols()?,
            errors: self.error_table()?,
        })
    }

    /// The allow-list, resolved through the arena.
    pub fn allow_list(&self) -> Result<Vec<&Domain>, ColumnarError> {
        let arena = self.domains()?;
        Ok(self
            .allow_ids()?
            .iter()
            .map(|&id| &arena[id as usize])
            .collect())
    }

    /// Attestation probes, resolved through the arena.
    pub fn probe_scan(&self) -> Result<ProbeScan<'_>, ColumnarError> {
        Ok(ProbeScan {
            arena: self.domains()?,
            p: self.probe_cols()?,
        })
    }
}

/// Borrowed scan over the visit columns.
#[derive(Debug, Clone, Copy)]
pub struct VisitScan<'a> {
    arena: &'a [Domain],
    v: &'a VisitCols,
    parties: &'a [u32],
}

impl<'a> VisitScan<'a> {
    /// Number of visit rows.
    pub fn len(self) -> usize {
        self.v.phase.len()
    }

    /// True when the campaign recorded no visits.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// One row.
    pub fn get(self, idx: usize) -> VisitView<'a> {
        VisitView { scan: self, idx }
    }

    /// Every visit row, in site-rank order (before-visit then
    /// after-visit per site).
    pub fn iter(self) -> impl Iterator<Item = VisitView<'a>> {
        (0..self.len()).map(move |idx| self.get(idx))
    }

    /// Filtered range scan: only visits in `phase`.
    pub fn in_phase(self, phase: Phase) -> impl Iterator<Item = VisitView<'a>> {
        let code = phase_code(phase);
        (0..self.len())
            .filter(move |&i| self.v.phase[i] == code)
            .map(move |idx| self.get(idx))
    }
}

/// One visit row, read straight out of the columns.
#[derive(Debug, Clone, Copy)]
pub struct VisitView<'a> {
    scan: VisitScan<'a>,
    idx: usize,
}

impl<'a> VisitView<'a> {
    /// Row index (the id site rows reference).
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Which visit this is.
    pub fn phase(&self) -> Phase {
        phase_from(self.scan.v.phase[self.idx]).expect("validated at decode")
    }

    /// The ranked website.
    pub fn website(&self) -> &'a Domain {
        &self.scan.arena[self.scan.v.website[self.idx] as usize]
    }

    /// The registrable domain that served the page.
    pub fn final_website(&self) -> &'a Domain {
        &self.scan.arena[self.scan.v.final_website[self.idx] as usize]
    }

    /// Arena ids of the parties present on the page.
    pub fn party_ids(&self) -> &'a [u32] {
        let start = self.scan.v.party_start[self.idx] as usize;
        let len = self.scan.v.party_len[self.idx] as usize;
        &self.scan.parties[start..start + len]
    }

    /// The parties present on the page, in first-seen order.
    pub fn parties(&self) -> impl Iterator<Item = &'a Domain> + '_ {
        let arena = self.scan.arena;
        self.party_ids().iter().map(move |&id| &arena[id as usize])
    }

    /// Total objects requested.
    pub fn object_count(&self) -> usize {
        self.scan.v.object_count[self.idx] as usize
    }

    /// Objects that failed to load.
    pub fn failed_objects(&self) -> usize {
        self.scan.v.failed_objects[self.idx] as usize
    }

    /// Row range of this visit's calls in the call columns.
    pub fn call_range(&self) -> Range<usize> {
        let start = self.scan.v.call_start[self.idx] as usize;
        start..start + self.scan.v.call_len[self.idx] as usize
    }

    /// A privacy banner was detected.
    pub fn banner_found(&self) -> bool {
        self.scan.v.banner[self.idx]
    }

    /// When the visit started.
    pub fn started(&self) -> Timestamp {
        Timestamp(self.scan.v.started[self.idx])
    }

    /// Simulated page-load duration.
    pub fn duration_ms(&self) -> u64 {
        self.scan.v.duration_ms[self.idx]
    }
}

/// Borrowed scan over the call columns.
#[derive(Debug, Clone, Copy)]
pub struct CallScan<'a> {
    arena: &'a [Domain],
    c: &'a CallCols,
}

impl<'a> CallScan<'a> {
    /// Number of call rows.
    pub fn len(self) -> usize {
        self.c.caller.len()
    }

    /// True when the campaign recorded no calls.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// One row.
    pub fn get(self, idx: usize) -> CallView<'a> {
        CallView { scan: self, idx }
    }

    /// Every call row, in visit order.
    pub fn iter(self) -> impl Iterator<Item = CallView<'a>> {
        (0..self.len()).map(move |idx| self.get(idx))
    }

    /// Range scan — pair with [`VisitView::call_range`].
    pub fn range(self, r: Range<usize>) -> impl Iterator<Item = CallView<'a>> {
        r.map(move |idx| self.get(idx))
    }
}

/// One topics call, read straight out of the columns.
#[derive(Debug, Clone, Copy)]
pub struct CallView<'a> {
    scan: CallScan<'a>,
    idx: usize,
}

impl<'a> CallView<'a> {
    /// Full host attributed as the calling party.
    pub fn caller(&self) -> &'a Domain {
        &self.scan.arena[self.scan.c.caller[self.idx] as usize]
    }

    /// The CP at registrable-domain granularity.
    pub fn caller_site(&self) -> &'a Domain {
        &self.scan.arena[self.scan.c.caller_site[self.idx] as usize]
    }

    /// Intern id of the CP — an index into [`ColumnarCampaign::domains`].
    /// Lets aggregations run in id space and defer string work to the end.
    pub fn caller_site_id(&self) -> u32 {
        self.scan.c.caller_site[self.idx]
    }

    /// Host that served the calling script, if external.
    pub fn script_source(&self) -> Option<&'a Domain> {
        match self.scan.c.script_source[self.idx] {
            NONE_ID => None,
            id => Some(&self.scan.arena[id as usize]),
        }
    }

    /// Call type.
    pub fn call_type(&self) -> CallType {
        call_type_from(self.scan.c.call_type[self.idx]).expect("validated at decode")
    }

    /// The browser's allow-list decision.
    pub fn decision(&self) -> AllowDecision {
        decision_from(self.scan.c.decision[self.idx]).expect("validated at decode")
    }

    /// Whether the call was executed.
    pub fn permitted(&self) -> bool {
        self.decision().permits()
    }

    /// True when the call came from the root context.
    pub fn root_context(&self) -> bool {
        self.scan.c.root_context[self.idx]
    }

    /// Topics returned to the caller.
    pub fn topics_returned(&self) -> usize {
        self.scan.c.topics_returned[self.idx] as usize
    }

    /// Timestamp of the call.
    pub fn timestamp(&self) -> Timestamp {
        Timestamp(self.scan.c.timestamp[self.idx])
    }
}

/// Borrowed scan over the per-site columns.
#[derive(Debug, Clone, Copy)]
pub struct SiteScan<'a> {
    arena: &'a [Domain],
    s: &'a SiteCols,
    errors: &'a [String],
}

impl<'a> SiteScan<'a> {
    /// Number of ranked sites.
    pub fn len(self) -> usize {
        self.s.rank.len()
    }

    /// True when the campaign covered no sites.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// One row.
    pub fn get(self, idx: usize) -> SiteRow<'a> {
        let s = self.s;
        SiteRow {
            rank: s.rank[idx] as usize,
            website: &self.arena[s.website[idx] as usize],
            before: (s.before[idx] != NONE_ID).then_some(s.before[idx] as usize),
            after: (s.after[idx] != NONE_ID).then_some(s.after[idx] as usize),
            error: (s.error[idx] != NONE_ID).then(|| self.errors[s.error[idx] as usize].as_str()),
            faults: FaultStats {
                retries: s.retries[idx],
                timed_out: s.flags[idx] & FAULT_TIMED_OUT != 0,
                second_visit_failed: s.flags[idx] & FAULT_SECOND_VISIT_FAILED != 0,
            },
        }
    }

    /// Every site row, in rank order.
    pub fn iter(self) -> impl Iterator<Item = SiteRow<'a>> {
        (0..self.len()).map(move |idx| self.get(idx))
    }
}

/// One site row: visit references are row indexes into the visit
/// columns ([`VisitScan::get`]).
#[derive(Debug, Clone, Copy)]
pub struct SiteRow<'a> {
    /// 0-based Tranco rank.
    pub rank: usize,
    /// The ranked domain.
    pub website: &'a Domain,
    /// Visit-row index of the Before-Accept visit.
    pub before: Option<usize>,
    /// Visit-row index of the second visit.
    pub after: Option<usize>,
    /// Failure message, if the site could not be visited.
    pub error: Option<&'a str>,
    /// Fault-layer bookkeeping.
    pub faults: FaultStats,
}

/// Borrowed scan over the attestation-probe columns.
#[derive(Debug, Clone, Copy)]
pub struct ProbeScan<'a> {
    arena: &'a [Domain],
    p: &'a ProbeCols,
}

impl<'a> ProbeScan<'a> {
    /// Number of probes.
    pub fn len(self) -> usize {
        self.p.domain.len()
    }

    /// True when nothing was probed.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Intern id of the `i`th probe's domain — an index into
    /// [`ColumnarCampaign::domains`].
    pub fn domain_id(self, i: usize) -> u32 {
        self.p.domain[i]
    }

    /// Every probe, in sorted-domain order: `(domain, valid info)`.
    pub fn iter(self) -> impl Iterator<Item = (&'a Domain, Option<AttestationInfo>)> {
        (0..self.len()).map(move |i| {
            let domain = &self.arena[self.p.domain[i] as usize];
            let valid = self.p.valid[i].then_some(AttestationInfo {
                issued: Timestamp(self.p.issued[i]),
                has_enrollment_site: self.p.enrollment_site[i],
            });
            (domain, valid)
        })
    }
}

// ---------------------------------------------------------------------------
// Reconstruction and whole-file verification.

impl ColumnarCampaign {
    fn build_visit(&self, idx: usize) -> Result<VisitRecord, ColumnarError> {
        let arena = self.domains()?;
        let v = self.visit_cols()?;
        let parties = self.party_ids()?;
        let calls = self.call_cols()?;
        let pr = v.party_start[idx] as usize..(v.party_start[idx] + v.party_len[idx]) as usize;
        let cr = v.call_start[idx] as usize..(v.call_start[idx] + v.call_len[idx]) as usize;
        Ok(VisitRecord {
            phase: phase_from(v.phase[idx]).expect("validated at decode"),
            website: arena[v.website[idx] as usize].clone(),
            final_website: arena[v.final_website[idx] as usize].clone(),
            party_domains: parties[pr]
                .iter()
                .map(|&id| arena[id as usize].clone())
                .collect(),
            object_count: v.object_count[idx] as usize,
            failed_objects: v.failed_objects[idx] as usize,
            topics_calls: cr
                .map(|c| TopicsCallRecord {
                    caller: arena[calls.caller[c] as usize].clone(),
                    caller_site: arena[calls.caller_site[c] as usize].clone(),
                    call_type: call_type_from(calls.call_type[c]).expect("validated at decode"),
                    root_context: calls.root_context[c],
                    script_source: match calls.script_source[c] {
                        NONE_ID => None,
                        id => Some(arena[id as usize].clone()),
                    },
                    decision: decision_from(calls.decision[c]).expect("validated at decode"),
                    topics_returned: calls.topics_returned[c] as usize,
                    timestamp: Timestamp(calls.timestamp[c]),
                })
                .collect(),
            banner_found: v.banner[idx],
            started: Timestamp(v.started[idx]),
            duration_ms: v.duration_ms[idx],
        })
    }

    /// Rebuild the row-struct [`CampaignOutcome`]. Domain strings are
    /// `Arc`-cloned out of the arena, so — unlike the JSON reader —
    /// every repeated domain shares one allocation.
    pub fn to_outcome(&self) -> Result<CampaignOutcome, ColumnarError> {
        let arena = self.domains()?;
        let s = self.site_cols()?;
        let errors = self.error_table()?;
        let mut sites = Vec::with_capacity(self.site_count());
        for i in 0..self.site_count() {
            let before = match s.before[i] {
                NONE_ID => None,
                idx => Some(self.build_visit(idx as usize)?),
            };
            let after = match s.after[i] {
                NONE_ID => None,
                idx => Some(self.build_visit(idx as usize)?),
            };
            sites.push(SiteOutcome {
                rank: s.rank[i] as usize,
                website: arena[s.website[i] as usize].clone(),
                before,
                after,
                error: match s.error[i] {
                    NONE_ID => None,
                    e => Some(errors[e as usize].clone()),
                },
                faults: FaultStats {
                    retries: s.retries[i],
                    timed_out: s.flags[i] & FAULT_TIMED_OUT != 0,
                    second_visit_failed: s.flags[i] & FAULT_SECOND_VISIT_FAILED != 0,
                },
            });
        }
        let allow_list: Vec<Domain> = self
            .allow_ids()?
            .iter()
            .map(|&id| arena[id as usize].clone())
            .collect();
        let p = self.probe_cols()?;
        let attestation_probes: Vec<AttestationProbe> = (0..p.domain.len())
            .map(|i| AttestationProbe {
                domain: arena[p.domain[i] as usize].clone(),
                valid: p.valid[i].then_some(AttestationInfo {
                    issued: Timestamp(p.issued[i]),
                    has_enrollment_site: p.enrollment_site[i],
                }),
            })
            .collect();
        Ok(CampaignOutcome {
            schema_version: self.schema_version,
            sites,
            allow_list,
            attestation_probes,
            started: self.started,
        })
    }

    /// Full integrity check: every section checksum, every column
    /// validation, plus the cross-section invariants the lazy decoders
    /// cannot see — visit ownership, range tiling, and intern-table
    /// referential integrity (every id in range, no orphan strings).
    pub fn verify(&self) -> Result<(), ColumnarError> {
        let arena = self.domains()?;
        let errors = self.error_table()?;
        let s = self.site_cols()?;
        let v = self.visit_cols()?;
        let parties = self.party_ids()?;
        let c = self.call_cols()?;
        let allow = self.allow_ids()?;
        let p = self.probe_cols()?;

        // Every visit row belongs to exactly one site slot.
        let mut owned = vec![0u32; v.phase.len()];
        for &idx in s.before.iter().chain(&s.after) {
            if idx != NONE_ID {
                owned[idx as usize] += 1;
            }
        }
        if let Some(idx) = owned.iter().position(|&n| n != 1) {
            return Err(ColumnarError::Malformed(format!(
                "visit {idx} is referenced by {} site slots (expected exactly 1)",
                owned[idx]
            )));
        }

        // Party and call ranges tile their tables contiguously in
        // visit order — no gaps, no overlaps, no tail.
        let mut party_cursor = 0u32;
        let mut call_cursor = 0u32;
        for i in 0..v.phase.len() {
            if v.party_start[i] != party_cursor || v.call_start[i] != call_cursor {
                return Err(ColumnarError::Malformed(format!(
                    "visit {i}'s ranges do not tile the party/call tables"
                )));
            }
            party_cursor += v.party_len[i];
            call_cursor += v.call_len[i];
        }
        if party_cursor as usize != parties.len() || call_cursor as usize != c.caller.len() {
            return Err(ColumnarError::Malformed(
                "party/call tables extend past the last visit's range".to_owned(),
            ));
        }

        // Error strings must all be referenced.
        let mut error_used = vec![false; errors.len()];
        for &e in &s.error {
            if e != NONE_ID {
                error_used[e as usize] = true;
            }
        }
        if let Some(idx) = error_used.iter().position(|&u| !u) {
            return Err(ColumnarError::Malformed(format!(
                "error string {idx} is referenced by no site"
            )));
        }

        // Intern-table referential integrity: no orphan strings.
        let mut used = vec![false; arena.len()];
        let mut mark = |id: u32| {
            if id != NONE_ID {
                used[id as usize] = true;
            }
        };
        for &id in &s.website {
            mark(id);
        }
        for &id in v.website.iter().chain(&v.final_website) {
            mark(id);
        }
        for &id in parties {
            mark(id);
        }
        for &id in c
            .caller
            .iter()
            .chain(&c.caller_site)
            .chain(&c.script_source)
        {
            mark(id);
        }
        for &id in allow.iter().chain(&p.domain) {
            mark(id);
        }
        if let Some(id) = used.iter().position(|&u| !u) {
            return Err(ColumnarError::OrphanString(id as u32));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    fn call(caller: &str, ct: CallType, decision: AllowDecision, root: bool) -> TopicsCallRecord {
        TopicsCallRecord {
            caller: d(caller),
            caller_site: topics_net::psl::registrable_domain(&d(caller)),
            call_type: ct,
            root_context: root,
            script_source: (caller == "tag.ads.com").then(|| d("cdn.ads.com")),
            decision,
            topics_returned: 3,
            timestamp: Timestamp(42),
        }
    }

    fn visit(
        phase: Phase,
        site: &str,
        parties: &[&str],
        calls: Vec<TopicsCallRecord>,
    ) -> VisitRecord {
        VisitRecord {
            phase,
            website: d(site),
            final_website: d(site),
            party_domains: parties.iter().map(|p| d(p)).collect(),
            object_count: 7,
            failed_objects: 1,
            topics_calls: calls,
            banner_found: phase == Phase::BeforeAccept,
            started: Timestamp(1_000),
            duration_ms: 640,
        }
    }

    fn outcome() -> CampaignOutcome {
        CampaignOutcome {
            schema_version: CAMPAIGN_SCHEMA_VERSION,
            sites: vec![
                SiteOutcome {
                    rank: 0,
                    website: d("site-a.com"),
                    before: Some(visit(
                        Phase::BeforeAccept,
                        "site-a.com",
                        &["site-a.com", "ads.com"],
                        vec![call(
                            "tag.ads.com",
                            CallType::JavaScript,
                            AllowDecision::AllowedFailOpen,
                            true,
                        )],
                    )),
                    after: Some(visit(
                        Phase::AfterAccept,
                        "site-a.com",
                        &["site-a.com", "ads.com", "cdn.net"],
                        vec![
                            call(
                                "tag.ads.com",
                                CallType::Fetch,
                                AllowDecision::AllowedEnrolled,
                                false,
                            ),
                            call(
                                "frame.rogue.net",
                                CallType::Iframe,
                                AllowDecision::BlockedNotEnrolled,
                                false,
                            ),
                        ],
                    )),
                    error: None,
                    faults: FaultStats {
                        retries: 2,
                        timed_out: true,
                        second_visit_failed: false,
                    },
                },
                SiteOutcome {
                    rank: 1,
                    website: d("dead.com"),
                    before: None,
                    after: None,
                    error: Some("NXDOMAIN".into()),
                    faults: FaultStats::default(),
                },
                SiteOutcome {
                    rank: 2,
                    website: d("site-b.de"),
                    before: Some(visit(
                        Phase::BeforeAccept,
                        "site-b.de",
                        &["site-b.de"],
                        vec![],
                    )),
                    after: None,
                    error: None,
                    faults: FaultStats::default(),
                },
            ],
            allow_list: vec![d("ads.com"), d("unused-allowed.com")],
            attestation_probes: vec![
                AttestationProbe {
                    domain: d("ads.com"),
                    valid: Some(AttestationInfo {
                        issued: Timestamp(7),
                        has_enrollment_site: true,
                    }),
                },
                AttestationProbe {
                    domain: d("rogue.net"),
                    valid: None,
                },
            ],
            started: Timestamp(500),
        }
    }

    #[test]
    fn round_trip_is_lossless() {
        let original = outcome();
        let store = ColumnarCampaign::from_outcome(&original);
        let reread = ColumnarCampaign::decode(store.bytes().to_vec()).unwrap();
        let back = reread.to_outcome().unwrap();
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&original).unwrap()
        );
    }

    #[test]
    fn read_from_loads_a_file_and_keeps_error_kinds_distinct() {
        let dir = std::env::temp_dir().join(format!("topics-colread-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.col");
        let store = ColumnarCampaign::from_outcome(&outcome());
        std::fs::write(&path, store.bytes()).unwrap();
        let loaded = ColumnarCampaign::read_from(&path).unwrap();
        assert_eq!(loaded.bytes(), store.bytes());
        // Missing file → NotFound; corrupt payload → InvalidData with
        // the typed decode error in the message.
        let missing = ColumnarCampaign::read_from(&dir.join("absent.col")).unwrap_err();
        assert_eq!(missing.kind(), std::io::ErrorKind::NotFound);
        // Truncation is detected eagerly (section payloads must tile
        // the file), so a clipped store fails at load, not first use.
        let corrupt = &store.bytes()[..store.bytes().len() - 1];
        std::fs::write(&path, corrupt).unwrap();
        let err = ColumnarCampaign::read_from(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn encoding_is_deterministic() {
        let original = outcome();
        let a = ColumnarCampaign::from_outcome(&original);
        let b = ColumnarCampaign::from_outcome(&original);
        assert_eq!(a.bytes(), b.bytes());
    }

    #[test]
    fn builder_streams_sites_like_from_outcome() {
        let original = outcome();
        let mut b = ColumnarBuilder::new();
        for site in &original.sites {
            b.push_site(site);
        }
        let streamed = b.finish(
            original.schema_version,
            &original.allow_list,
            &original.attestation_probes,
            original.started,
        );
        assert_eq!(
            streamed.bytes(),
            ColumnarCampaign::from_outcome(&original).bytes()
        );
    }

    #[test]
    fn scans_expose_the_columns() {
        let original = outcome();
        let store = ColumnarCampaign::from_outcome(&original);
        assert_eq!(store.site_count(), 3);
        assert_eq!(store.visit_count(), 3);
        assert_eq!(store.call_count(), 3);
        assert_eq!(store.started(), Timestamp(500));
        assert_eq!(store.schema_version(), CAMPAIGN_SCHEMA_VERSION);

        let visits = store.visits().unwrap();
        assert_eq!(visits.len(), 3);
        let ba: Vec<_> = visits.in_phase(Phase::BeforeAccept).collect();
        assert_eq!(ba.len(), 2);
        assert_eq!(ba[0].website().as_str(), "site-a.com");
        assert!(ba[0].banner_found());
        assert_eq!(ba[0].party_ids().len(), 2);
        let parties: Vec<&str> = ba[0].parties().map(|p| p.as_str()).collect();
        assert_eq!(parties, vec!["site-a.com", "ads.com"]);

        let calls = store.calls().unwrap();
        let in_visit: Vec<_> = calls.range(visits.get(1).call_range()).collect();
        assert_eq!(in_visit.len(), 2);
        assert_eq!(in_visit[0].caller().as_str(), "tag.ads.com");
        assert_eq!(in_visit[0].caller_site().as_str(), "ads.com");
        assert_eq!(in_visit[0].call_type(), CallType::Fetch);
        assert!(in_visit[0].permitted());
        assert!(!in_visit[1].permitted());
        assert_eq!(in_visit[1].script_source(), None);

        let sites = store.sites().unwrap();
        let dead = sites.get(1);
        assert_eq!(dead.error, Some("NXDOMAIN"));
        assert_eq!(dead.before, None);
        let first = sites.get(0);
        assert_eq!(first.faults.retries, 2);
        assert!(first.faults.timed_out);

        let allow = store.allow_list().unwrap();
        assert_eq!(allow.len(), 2);
        let probes: Vec<_> = store.probe_scan().unwrap().iter().collect();
        assert_eq!(probes[0].0.as_str(), "ads.com");
        assert!(probes[0].1.as_ref().unwrap().has_enrollment_site);
        assert!(probes[1].1.is_none());
    }

    #[test]
    fn verify_accepts_a_healthy_store() {
        let store = ColumnarCampaign::from_outcome(&outcome());
        store.verify().unwrap();
    }

    #[test]
    fn verify_rejects_orphan_strings() {
        let original = outcome();
        let mut b = ColumnarBuilder::new();
        for site in &original.sites {
            b.push_site(site);
        }
        b.intern(&d("orphan.example.com"));
        let store = b.finish(
            original.schema_version,
            &original.allow_list,
            &original.attestation_probes,
            original.started,
        );
        assert!(matches!(
            store.verify(),
            Err(ColumnarError::OrphanString(_))
        ));
    }

    #[test]
    fn corruption_is_a_named_error() {
        let good = ColumnarCampaign::from_outcome(&outcome()).bytes().to_vec();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            ColumnarCampaign::decode(bad_magic).unwrap_err(),
            ColumnarError::BadMagic
        );

        let mut future_container = good.clone();
        future_container[8..12].copy_from_slice(&(COLUMNAR_VERSION + 1).to_le_bytes());
        assert_eq!(
            ColumnarCampaign::decode(future_container).unwrap_err(),
            ColumnarError::UnsupportedVersion(COLUMNAR_VERSION + 1)
        );

        let mut future_schema = good.clone();
        future_schema[12..16].copy_from_slice(&(CAMPAIGN_SCHEMA_VERSION + 9).to_le_bytes());
        assert!(matches!(
            ColumnarCampaign::decode(future_schema).unwrap_err(),
            ColumnarError::UnknownSchema(UnknownSchemaVersion { found, .. })
                if found == CAMPAIGN_SCHEMA_VERSION + 9
        ));

        let mut flipped_count = good.clone();
        flipped_count[24] ^= 0x01; // a row count inside the checksummed header
        assert!(matches!(
            ColumnarCampaign::decode(flipped_count).unwrap_err(),
            ColumnarError::HeaderChecksum { .. }
        ));

        let mut truncated = good.clone();
        truncated.truncate(good.len() - 3);
        assert!(matches!(
            ColumnarCampaign::decode(truncated).unwrap_err(),
            ColumnarError::Truncated { .. }
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            ColumnarCampaign::decode(trailing).unwrap_err(),
            ColumnarError::TrailingData("file")
        );
    }

    #[test]
    fn section_checksums_are_lazy_and_independent() {
        let mut bytes = ColumnarCampaign::from_outcome(&outcome()).bytes().to_vec();
        // The probes section is last; corrupt its final byte.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let store = ColumnarCampaign::decode(bytes).unwrap();
        // Untouched sections still read fine (laziness), ...
        assert_eq!(store.calls().unwrap().len(), 3);
        assert_eq!(store.visits().unwrap().len(), 3);
        // ... the corrupted one is a named checksum error, ...
        assert!(matches!(
            store.probe_scan().unwrap_err(),
            ColumnarError::SectionChecksum {
                section: "probes",
                ..
            }
        ));
        // ... and verify refuses the store as a whole.
        assert!(store.verify().is_err());
    }

    #[test]
    fn section_map_names_every_section() {
        let store = ColumnarCampaign::from_outcome(&outcome());
        let names: Vec<&str> = store.section_map().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["strings", "errors", "sites", "visits", "parties", "calls", "allow", "probes"]
        );
    }
}
