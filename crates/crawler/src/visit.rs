//! The per-site visit protocol (§2.2).
//!
//! For each ranked website: (1) visit and record everything
//! **Before-Accept**, without touching the banner; (2) run Priv-Accept on
//! the rendered page; (3) if an accept button matched, grant consent,
//! **delete the browser cache** so every object is downloaded again, and
//! visit once more (**After-Accept**). Sites that fail DNS/connection are
//! dropped, as in the paper.

use crate::metrics::CrawlMetrics;
use crate::privaccept;
use crate::record::{FaultStats, Phase, SiteOutcome, VisitRecord};
use std::sync::Arc;
use topics_browser::attestation::AttestationStore;
use topics_browser::browser::{Browser, BrowserConfig};
use topics_browser::origin::Site;
use topics_net::clock::Timestamp;
use topics_net::psl::registrable_domain;
use topics_net::seed;
use topics_net::service::{NetworkService, RetryPolicy};
use topics_net::url::Url;
use topics_obs::TraceBuilder;
use topics_taxonomy::Classifier;

/// How long after the Before-Accept visit the After-Accept one starts
/// (banner interaction plus cache clearing).
pub const ACCEPT_DELAY_MS: u64 = 30_000;

/// Default per-visit simulated time budget. Generous — fault-free page
/// loads finish well under a minute — so it only ever fires when
/// injected slow-responses and backoff waits pile up.
pub const DEFAULT_VISIT_TIMEOUT_MS: u64 = 120_000;

/// Resilience knobs for one site visit: how hard to retry individual
/// exchanges, and when to declare the whole visit dead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisitPolicy {
    /// Per-exchange retry/backoff policy handed to the browser.
    pub retry: RetryPolicy,
    /// Abandon a visit whose simulated duration exceeds this budget.
    pub visit_timeout_ms: u64,
}

impl Default for VisitPolicy {
    /// No retries, 120 s budget — the exact pre-fault-layer behaviour.
    fn default() -> VisitPolicy {
        VisitPolicy {
            retry: RetryPolicy::none(),
            visit_timeout_ms: DEFAULT_VISIT_TIMEOUT_MS,
        }
    }
}

/// What the crawler does with a recognised consent banner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsentAction {
    /// The paper's protocol: click the accept button.
    #[default]
    Accept,
    /// The opt-out extension: click the reject button instead. Gated
    /// tags must then stay hidden, and any Topics call in the second
    /// visit is a violation of an *explicit* refusal.
    Reject,
}

/// Visit one ranked site with a fresh browser profile.
///
/// `attestation` is cloned into the browser — the paper's configuration
/// passes a corrupted store so non-enrolled callers become observable.
pub fn run_site<S: NetworkService + ?Sized>(
    service: &S,
    url: &Url,
    rank: usize,
    classifier: Arc<Classifier>,
    attestation: AttestationStore,
    campaign_seed: u64,
    started: Timestamp,
) -> SiteOutcome {
    run_site_with_action(
        service,
        url,
        rank,
        classifier,
        attestation,
        campaign_seed,
        started,
        ConsentAction::Accept,
    )
}

/// The full-parameter visit entry point used by the campaign runner.
#[allow(clippy::too_many_arguments)]
pub fn run_site_full<S: NetworkService + ?Sized>(
    service: &S,
    url: &Url,
    rank: usize,
    classifier: Arc<Classifier>,
    attestation: AttestationStore,
    campaign_seed: u64,
    started: Timestamp,
    action: ConsentAction,
    vantage: topics_net::http::Vantage,
) -> SiteOutcome {
    run_site_inner(
        service,
        url,
        rank,
        classifier,
        attestation,
        campaign_seed,
        started,
        action,
        vantage,
        None,
        &VisitPolicy::default(),
        None,
    )
}

/// [`run_site_full`] with live crawl metrics attached: the browser
/// records network and Topics-call series while the visit runs, and the
/// visit/banner outcome counters are bumped before returning.
#[allow(clippy::too_many_arguments)]
pub fn run_site_instrumented<S: NetworkService + ?Sized>(
    service: &S,
    url: &Url,
    rank: usize,
    classifier: Arc<Classifier>,
    attestation: AttestationStore,
    campaign_seed: u64,
    started: Timestamp,
    action: ConsentAction,
    vantage: topics_net::http::Vantage,
    metrics: Option<&CrawlMetrics>,
) -> SiteOutcome {
    run_site_inner(
        service,
        url,
        rank,
        classifier,
        attestation,
        campaign_seed,
        started,
        action,
        vantage,
        metrics,
        &VisitPolicy::default(),
        None,
    )
}

/// [`run_site_instrumented`] with an explicit [`VisitPolicy`] — the
/// entry point the campaign runner uses when a fault profile is active.
#[allow(clippy::too_many_arguments)]
pub fn run_site_with_policy<S: NetworkService + ?Sized>(
    service: &S,
    url: &Url,
    rank: usize,
    classifier: Arc<Classifier>,
    attestation: AttestationStore,
    campaign_seed: u64,
    started: Timestamp,
    action: ConsentAction,
    vantage: topics_net::http::Vantage,
    metrics: Option<&CrawlMetrics>,
    policy: &VisitPolicy,
) -> SiteOutcome {
    run_site_inner(
        service,
        url,
        rank,
        classifier,
        attestation,
        campaign_seed,
        started,
        action,
        vantage,
        metrics,
        policy,
        None,
    )
}

/// [`run_site_with_policy`] recording the visit's span tree into
/// `trace`: a `visit` span (domain, rank, outcome, retries) wrapping the
/// browser's `page-load` trees and a `consent-click` leaf at the moment
/// the banner button is clicked.
#[allow(clippy::too_many_arguments)]
pub fn run_site_traced<S: NetworkService + ?Sized>(
    service: &S,
    url: &Url,
    rank: usize,
    classifier: Arc<Classifier>,
    attestation: AttestationStore,
    campaign_seed: u64,
    started: Timestamp,
    action: ConsentAction,
    vantage: topics_net::http::Vantage,
    metrics: Option<&CrawlMetrics>,
    policy: &VisitPolicy,
    trace: Option<&mut TraceBuilder>,
) -> SiteOutcome {
    run_site_inner(
        service,
        url,
        rank,
        classifier,
        attestation,
        campaign_seed,
        started,
        action,
        vantage,
        metrics,
        policy,
        trace,
    )
}

/// [`run_site`] with an explicit banner action (the opt-out experiment
/// passes [`ConsentAction::Reject`]).
#[allow(clippy::too_many_arguments)]
pub fn run_site_with_action<S: NetworkService + ?Sized>(
    service: &S,
    url: &Url,
    rank: usize,
    classifier: Arc<Classifier>,
    attestation: AttestationStore,
    campaign_seed: u64,
    started: Timestamp,
    action: ConsentAction,
) -> SiteOutcome {
    run_site_inner(
        service,
        url,
        rank,
        classifier,
        attestation,
        campaign_seed,
        started,
        action,
        topics_net::http::Vantage::Europe,
        None,
        &VisitPolicy::default(),
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_site_inner<S: NetworkService + ?Sized>(
    service: &S,
    url: &Url,
    rank: usize,
    classifier: Arc<Classifier>,
    attestation: AttestationStore,
    campaign_seed: u64,
    started: Timestamp,
    action: ConsentAction,
    vantage: topics_net::http::Vantage,
    metrics: Option<&CrawlMetrics>,
    policy: &VisitPolicy,
    mut trace: Option<&mut TraceBuilder>,
) -> SiteOutcome {
    let website = registrable_domain(url.host());
    let visit_span = trace.as_deref_mut().map(|tb| {
        let idx = tb.open("visit", Some(started.millis()));
        tb.field(idx, "domain", website.as_str());
        tb.field(idx, "rank", rank);
        idx
    });
    let profile_seed = seed::derive(seed::derive(campaign_seed, "profile"), website.as_str());
    let config = BrowserConfig {
        topics_enabled: true, // the paper manually opts in (§2.2)
        ab_seed: campaign_seed,
        vantage,
        retry: policy.retry,
        ..BrowserConfig::default()
    };
    let mut browser = Browser::new(classifier, attestation, config, profile_seed);
    if let Some(m) = metrics {
        browser = browser
            .with_net_metrics(m.net.clone())
            .with_topics_metrics(m.topics.clone());
    }
    let mut faults = FaultStats::default();

    // ---- Before-Accept ----------------------------------------------
    let before_visit =
        match browser.visit_traced(service, url, started, "before-accept", trace.as_deref_mut()) {
            Ok(v) if v.duration_ms > policy.visit_timeout_ms => {
                faults.retries += v.retries;
                faults.timed_out = true;
                if let Some(m) = metrics {
                    m.visits_failed.inc();
                    m.visits_timed_out.inc();
                }
                if let (Some(tb), Some(idx)) = (trace, visit_span) {
                    tb.field(idx, "outcome", "failed");
                    tb.field(idx, "retries", u64::from(faults.retries));
                    tb.field(idx, "error", "timeout");
                    tb.close(idx, Some(started.millis() + v.duration_ms));
                }
                return SiteOutcome {
                    rank,
                    website,
                    before: None,
                    after: None,
                    error: Some(format!(
                        "visit timed out: {} ms > {} ms budget",
                        v.duration_ms, policy.visit_timeout_ms
                    )),
                    faults,
                };
            }
            Ok(v) => v,
            Err(e) => {
                if let Some(m) = metrics {
                    m.visits_failed.inc();
                }
                if let (Some(tb), Some(idx)) = (trace, visit_span) {
                    tb.field(idx, "outcome", "failed");
                    tb.field(idx, "retries", u64::from(faults.retries));
                    tb.field(idx, "error", e.kind());
                    tb.close(idx, Some(started.millis()));
                }
                return SiteOutcome {
                    rank,
                    website,
                    before: None,
                    after: None,
                    error: Some(e.to_string()),
                    faults,
                };
            }
        };
    let mut end_ms = started.millis() + before_visit.duration_ms;
    faults.retries += before_visit.retries;
    if let Some(m) = metrics {
        m.visits_ok.inc();
    }
    let scan = privaccept::scan(&before_visit.document);
    let final_website = before_visit.website();
    let before = VisitRecord::assemble(
        Phase::BeforeAccept,
        website.clone(),
        final_website.clone(),
        &before_visit.objects,
        &before_visit.topics_calls,
        scan.banner_found,
        started,
        before_visit.duration_ms,
    );

    // ---- Banner interaction + second visit ---------------------------
    let proceed = match action {
        ConsentAction::Accept => scan.can_accept(),
        ConsentAction::Reject => scan.can_reject(),
    };
    let after = if proceed {
        let click_time = started.plus_millis(ACCEPT_DELAY_MS / 2);
        let site = Site::of(&Url::https(final_website.clone(), "/"));
        if let Some(tb) = trace.as_deref_mut() {
            let click_ms = click_time.millis();
            let leaf = tb.leaf("consent-click", Some(click_ms), Some(click_ms));
            let label = match action {
                ConsentAction::Accept => "accept",
                ConsentAction::Reject => "reject",
            };
            tb.field(leaf, "action", label);
        }
        let phase = match action {
            ConsentAction::Accept => {
                browser.grant_consent(&site, click_time);
                if let Some(m) = metrics {
                    m.banner_accepted.inc();
                }
                Phase::AfterAccept
            }
            ConsentAction::Reject => {
                browser.deny_consent(&site, click_time);
                if let Some(m) = metrics {
                    m.banner_rejected.inc();
                }
                Phase::AfterReject
            }
        };
        browser.clear_cache(); // §2.2: reload all objects
        let after_started = started.plus_millis(ACCEPT_DELAY_MS);
        let after_label = match phase {
            Phase::AfterReject => "after-reject",
            _ => "after-accept",
        };
        match browser.visit_traced(
            service,
            url,
            after_started,
            after_label,
            trace.as_deref_mut(),
        ) {
            Ok(v) if v.duration_ms > policy.visit_timeout_ms => {
                faults.retries += v.retries;
                faults.timed_out = true;
                faults.second_visit_failed = true;
                if let Some(m) = metrics {
                    m.visits_timed_out.inc();
                }
                end_ms = end_ms.max(after_started.millis() + v.duration_ms);
                None
            }
            Ok(v) => {
                faults.retries += v.retries;
                end_ms = end_ms.max(after_started.millis() + v.duration_ms);
                let fw = v.website();
                Some(VisitRecord::assemble(
                    phase,
                    website.clone(),
                    fw,
                    &v.objects,
                    &v.topics_calls,
                    privaccept::scan(&v.document).banner_found,
                    after_started,
                    v.duration_ms,
                ))
            }
            // A failure on the second visit (rare: a flaky third party
            // cannot kill it, only the site itself) drops the site from
            // the second dataset but keeps it in D_BA, like the paper's
            // pipeline.
            Err(_) => {
                faults.second_visit_failed = true;
                None
            }
        }
    } else {
        None
    };

    let outcome = SiteOutcome {
        rank,
        website,
        before: Some(before),
        after,
        error: None,
        faults,
    };
    if let Some(m) = metrics {
        if outcome.outcome() == crate::record::VisitOutcome::Degraded {
            m.visits_degraded.inc();
        }
    }
    if let (Some(tb), Some(idx)) = (trace, visit_span) {
        tb.field(idx, "outcome", outcome.outcome().label());
        tb.field(idx, "retries", u64::from(outcome.faults.retries));
        tb.close(idx, Some(end_ms));
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use topics_webgen::{World, WorldConfig};

    fn classifier() -> Arc<Classifier> {
        Arc::new(Classifier::new(1))
    }

    fn visit_rank(world: &World, rank: usize) -> SiteOutcome {
        let url = &world.tranco_list()[rank];
        run_site(
            world,
            url,
            rank,
            classifier(),
            AttestationStore::corrupted(),
            world.seed(),
            Timestamp::from_days(302),
        )
    }

    #[test]
    fn visits_record_objects_and_phase() {
        let world = World::generate(WorldConfig::scaled(41, 300));
        let mut visited = 0;
        let mut accepted = 0;
        for rank in 0..300 {
            let o = visit_rank(&world, rank);
            if o.visited() {
                visited += 1;
                let b = o.before.as_ref().unwrap();
                assert_eq!(b.phase, Phase::BeforeAccept);
                assert!(b.object_count >= 1);
                assert_eq!(b.party_domains[0], b.final_website);
            }
            if o.accepted() {
                accepted += 1;
                let a = o.after.as_ref().unwrap();
                assert_eq!(a.phase, Phase::AfterAccept);
                // After-Accept re-downloads everything, so it sees at
                // least as many parties (gated tags appear).
                let b = o.before.as_ref().unwrap();
                assert!(a.party_domains.len() + 1 >= b.party_domains.len());
            }
        }
        // DNS failure rate ≈13%, acceptance ≈30%: sanity bands.
        assert!((230..=280).contains(&visited), "visited {visited} of 300");
        assert!((50..=140).contains(&accepted), "accepted {accepted} of 300");
    }

    #[test]
    fn page_load_durations_are_plausible_and_deterministic() {
        let world = World::generate(WorldConfig::scaled(41, 60));
        for rank in 0..60 {
            let a = visit_rank(&world, rank);
            let b = visit_rank(&world, rank);
            if let (Some(va), Some(vb)) = (&a.before, &b.before) {
                assert_eq!(va.duration_ms, vb.duration_ms, "deterministic");
                // A page with N objects costs at least one RTT each and
                // far less than a minute in total.
                assert!(va.duration_ms >= 100, "{}", va.duration_ms);
                assert!(va.duration_ms < 60_000, "{}", va.duration_ms);
            }
        }
    }

    #[test]
    fn failed_sites_carry_an_error() {
        let world = World::generate(WorldConfig::scaled(41, 400));
        let failed = (0..400)
            .map(|r| visit_rank(&world, r))
            .find(|o| !o.visited())
            .expect("some site fails DNS in 400");
        assert!(failed.error.is_some());
        assert!(!failed.accepted());
    }

    #[test]
    fn consent_unlocks_gated_tags() {
        let world = World::generate(WorldConfig::scaled(43, 800));
        // Find a gating site with platforms and a detectable banner.
        let spec = world
            .sites()
            .iter()
            .find(|s| {
                s.gates_pre_consent
                    && !s.platforms.is_empty()
                    && s.has_banner
                    && !s.banner_quirky
                    && s.language.priv_accept_supported()
                    && s.alias_of.is_none()
            })
            .expect("such a site exists");
        let o = visit_rank(&world, spec.rank);
        if !o.visited() {
            return; // this particular site may be in the DNS-failed 13%
        }
        assert!(o.accepted(), "banner should be accepted");
        let before = o.before.as_ref().unwrap();
        let after = o.after.as_ref().unwrap();
        let party = &world.registry()[spec.platforms[0].0].domain;
        assert!(!before.has_party(party), "gated tag absent pre-consent");
        assert!(after.has_party(party), "gated tag present post-consent");
    }

    #[test]
    fn unsupported_language_banners_are_not_accepted() {
        use topics_webgen::lang::Language;
        let world = World::generate(WorldConfig::scaled(47, 600));
        // Note: Dutch is excluded although Priv-Accept does not list it —
        // "Alles accepteren" happens to contain the English keyword
        // "accept", a realistic cross-language match the tool also gets
        // for free. Cyrillic/CJK banners genuinely never match.
        let spec = world
            .sites()
            .iter()
            .find(|s| {
                s.has_banner
                    && matches!(
                        s.language,
                        Language::Russian | Language::Japanese | Language::Polish
                    )
            })
            .expect("a non-supported-language banner site");
        let o = visit_rank(&world, spec.rank);
        if let Some(before) = &o.before {
            assert!(before.banner_found, "banner container detected");
            assert!(!o.accepted(), "but the button text never matches");
        }
    }

    #[test]
    fn alias_sites_record_both_identities() {
        let world = World::generate(WorldConfig::scaled(49, 3_000));
        let spec = world
            .sites()
            .iter()
            .find(|s| s.alias_of.is_some())
            .expect("an alias site");
        let o = visit_rank(&world, spec.rank);
        if let Some(before) = &o.before {
            assert_eq!(before.website, spec.domain);
            assert_eq!(&before.final_website, spec.alias_of.as_ref().unwrap());
        }
    }
}
