//! # topics-crawler — the paper's measurement crawler
//!
//! The reproduction of the Selenium + Priv-Accept pipeline of §2.2: a
//! [`topics_browser::Browser`] visits every site of a Tranco-style list
//! twice — **Before-Accept** and, when the consent banner can be
//! accepted, **After-Accept** (with the cache cleared in between) — and
//! records every downloaded object and every Topics API call. After the
//! crawl, every encountered party is probed for its attestation
//! well-known file.
//!
//! * [`privaccept`] — consent-banner detection and acceptance (keyword
//!   matching in five languages, like the Priv-Accept tool).
//! * [`visit`] — the per-site two-visit protocol.
//! * [`campaign`] — the parallel campaign runner, allow-list setups
//!   (including the paper's corrupted-on-purpose configuration), the
//!   attestation prober, and repeated-visit support for the §3 A/B
//!   alternation experiment.
//! * [`record`] — the measurement schema handed to `topics-analysis`.
//! * [`columnar`] — the interned struct-of-arrays campaign store and
//!   its zero-deserialization query layer.
//! * [`shard`] — rank-stripe shard planning, checksummed record
//!   segments, and the deterministic merge back into one campaign.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod columnar;
pub mod metrics;
pub mod privaccept;
pub mod record;
pub mod shard;
pub mod visit;

pub use campaign::{
    probe_attestation, probe_attestation_retrying, run_campaign, run_campaign_observed,
    run_campaign_stripe, run_campaign_with_progress, run_repeated, AllowListSetup, CampaignConfig,
    CrawlTarget,
};
pub use columnar::{
    ColumnarBuilder, ColumnarCampaign, ColumnarError, COLUMNAR_MAGIC, COLUMNAR_VERSION,
};
pub use metrics::{tally_outcome, CrawlMetrics, CALL_CLASSES};
pub use record::{
    AttestationInfo, AttestationProbe, CampaignOutcome, FaultStats, OutcomeCounts, Phase,
    SiteOutcome, TopicsCallRecord, UnknownSchemaVersion, VisitOutcome, VisitRecord,
    CAMPAIGN_SCHEMA_VERSION,
};
pub use shard::{
    merge_segments, shard_token, split_outcome, tally_snapshot, Fnv, MergeError, Segment,
    SegmentError, SegmentHeader, ShardPlan, StreamingMerge, SEGMENT_VERSION,
};
pub use visit::{
    run_site, run_site_full, run_site_instrumented, run_site_with_action, run_site_with_policy,
    ConsentAction, VisitPolicy,
};
