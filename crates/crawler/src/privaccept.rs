//! Priv-Accept: automatic consent-banner detection and acceptance.
//!
//! Reimplements the logic of the tool the paper builds on (Jha et al.,
//! "The Internet with Privacy Policies", TWEB 2022): keyword matching of
//! accept-button text in five languages — English, French, Spanish,
//! German and Italian — reported to be 92–95% accurate on banners in
//! those languages. The crawler runs detection on the Before-Accept
//! page; when an accept button matches, it "clicks" it (grants consent)
//! and performs the After-Accept visit.
//!
//! Detection accuracy is *emergent* here: the synthetic web writes its
//! banners in the site's language with mostly standard but sometimes
//! quirky phrasing, and these keyword lists either match or miss.

use topics_browser::html::{Document, Node};

/// Accept-button keywords per supported language, lowercase. Matching is
/// substring-based on the flattened button text, like Priv-Accept's
/// clickable-element scan.
pub const ACCEPT_KEYWORDS: [(&str, &[&str]); 5] = [
    (
        "english",
        &[
            "accept all",
            "accept cookies",
            "allow all",
            "i agree",
            "agree and close",
            "accept",
        ],
    ),
    ("french", &["tout accepter", "j'accepte", "accepter"]),
    ("spanish", &["aceptar todo", "aceptar y cerrar", "aceptar"]),
    (
        "german",
        &[
            "alle akzeptieren",
            "akzeptieren",
            "zustimmen",
            "einverstanden",
        ],
    ),
    (
        "italian",
        &["accetta tutti", "accetto", "accetta", "consenti"],
    ),
];

/// Words whose presence marks a clickable as a *reject* control, which
/// must never be clicked by the accept flow even if an accept keyword
/// also matches (e.g. "do not accept").
const REJECT_MARKERS: [&str; 6] = [
    "reject",
    "decline",
    "refuse",
    "do not",
    "nur notwendige",
    "rifiuta",
];

/// Reject-button keywords for the opt-out experiment (the After-Reject
/// protocol, an extension beyond the paper's Before/After-Accept).
pub const REJECT_KEYWORDS: [&str; 10] = [
    "reject all",
    "decline",
    "refuse",
    "tout refuser",
    "rechazar todo",
    "alle ablehnen",
    "ablehnen",
    "rifiuta tutto",
    "no thanks",
    "reject",
];

/// Class/id substrings that mark a container as a privacy banner.
const BANNER_MARKERS: [&str; 6] = ["consent", "cookie", "privacy", "banner", "cmp", "gdpr"];

/// The result of scanning one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BannerScan {
    /// A banner container was detected on the page.
    pub banner_found: bool,
    /// The text of the accept button that matched, if any.
    pub accept_button: Option<String>,
    /// Which language's keyword list matched.
    pub matched_language: Option<&'static str>,
    /// The text of the reject button that matched, if any (used by the
    /// After-Reject opt-out experiment).
    pub reject_button: Option<String>,
}

impl BannerScan {
    /// Whether Priv-Accept would proceed to the After-Accept visit.
    pub fn can_accept(&self) -> bool {
        self.accept_button.is_some()
    }

    /// Whether the opt-out flow can click an explicit reject button.
    pub fn can_reject(&self) -> bool {
        self.reject_button.is_some()
    }
}

/// Scan a parsed page for a privacy banner and an accept button.
pub fn scan(document: &Document) -> BannerScan {
    let banner_found = document.nodes.iter().any(|n| match n {
        Node::Container { classes, id, .. } => {
            classes.iter().any(|c| has_marker(c, &BANNER_MARKERS))
                || id
                    .as_deref()
                    .is_some_and(|i| has_marker(i, &BANNER_MARKERS))
        }
        _ => false,
    });

    let mut accept_button = None;
    let mut matched_language = None;
    'outer: for node in document.clickables() {
        let Node::Clickable { text, .. } = node else {
            continue;
        };
        let lower = text.to_lowercase();
        if lower.is_empty() || REJECT_MARKERS.iter().any(|m| lower.contains(m)) {
            continue;
        }
        for (lang, keywords) in ACCEPT_KEYWORDS {
            if keywords.iter().any(|k| lower.contains(k)) {
                accept_button = Some(text.clone());
                matched_language = Some(lang);
                break 'outer;
            }
        }
    }

    let mut reject_button = None;
    for node in document.clickables() {
        let Node::Clickable { text, .. } = node else {
            continue;
        };
        let lower = text.to_lowercase();
        if REJECT_KEYWORDS.iter().any(|k| lower.contains(k)) {
            reject_button = Some(text.clone());
            break;
        }
    }

    // Priv-Accept only clicks buttons that belong to a banner context;
    // a bare "accept" link on a bannerless page is not a consent flow.
    if !banner_found {
        accept_button = None;
        matched_language = None;
        reject_button = None;
    }

    BannerScan {
        banner_found,
        accept_button,
        matched_language,
        reject_button,
    }
}

fn has_marker(value: &str, markers: &[&str]) -> bool {
    let lower = value.to_lowercase();
    markers.iter().any(|m| lower.contains(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use topics_browser::html::parse;

    fn banner_page(button_text: &str) -> Document {
        parse(&format!(
            r#"<div class="consent-banner"><p>We use cookies.</p>
               <button id="accept-btn">{button_text}</button>
               <button id="reject-btn">×</button></div>"#
        ))
    }

    #[test]
    fn detects_standard_phrases_in_all_five_languages() {
        for phrase in [
            "Accept all cookies",
            "Tout accepter",
            "Aceptar todo",
            "Alle akzeptieren",
            "Accetta tutti",
        ] {
            let scan_result = scan(&banner_page(phrase));
            assert!(scan_result.banner_found);
            assert!(
                scan_result.can_accept(),
                "should match standard phrase {phrase:?}"
            );
        }
    }

    #[test]
    fn misses_quirky_and_unsupported_phrases() {
        for phrase in [
            "Sounds good!",         // quirky English
            "C'est parti",          // quirky French
            "Принять все",          // Russian (unsupported)
            "すべて同意する",       // Japanese (unsupported)
            "Zaakceptuj wszystkie", // Polish (unsupported)
        ] {
            let scan_result = scan(&banner_page(phrase));
            assert!(scan_result.banner_found, "banner still detected");
            assert!(!scan_result.can_accept(), "should NOT match {phrase:?}");
        }
    }

    #[test]
    fn no_banner_means_no_acceptance() {
        let doc = parse(r#"<div class="content"><button>Accept delivery</button></div>"#);
        let s = scan(&doc);
        assert!(!s.banner_found);
        assert!(!s.can_accept(), "accept text outside a banner is ignored");
    }

    #[test]
    fn reject_controls_are_never_clicked() {
        let doc = parse(
            r#"<div id="cookie-notice">
               <button>Do not accept</button>
               <button>Reject all</button></div>"#,
        );
        let s = scan(&doc);
        assert!(s.banner_found);
        assert!(!s.can_accept());
    }

    #[test]
    fn banner_detected_by_id_or_class() {
        for html in [
            r#"<div id="privacy-banner"><button>Accept all</button></div>"#,
            r#"<div class="site-gdpr-box"><button>Accept all</button></div>"#,
            r#"<div class="cmp-wrapper"><button>Accept all</button></div>"#,
        ] {
            assert!(scan(&parse(html)).can_accept(), "{html}");
        }
    }

    #[test]
    fn matched_language_is_reported() {
        let s = scan(&banner_page("Alle akzeptieren"));
        assert_eq!(s.matched_language, Some("german"));
        let s = scan(&banner_page("Accept all cookies"));
        assert_eq!(s.matched_language, Some("english"));
    }

    #[test]
    fn anchor_buttons_work_too() {
        let doc = parse(r##"<div class="cookiebar"><a href="#" class="btn">I agree</a></div>"##);
        assert!(scan(&doc).can_accept());
    }
}
