//! The measurement record schema.
//!
//! Mirrors what the paper's modified Chromium logs (§2.2): for every
//! visited website, the set of first-/third-party objects downloaded, and
//! for every Topics API call the calling party, the website, the call
//! type, and the timestamp — plus the context fields our instrumentation
//! adds (root vs iframe context, script source, allow-list decision).

use serde::{Deserialize, Serialize};
use topics_browser::attestation::AllowDecision;
use topics_browser::observer::{CallType, ObjectEvent, TopicsCallEvent};
use topics_net::clock::Timestamp;
use topics_net::domain::Domain;
use topics_net::http::ResourceKind;
use topics_net::psl::RegDomainMemo;

/// Which of the two visits a record belongs to (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// The first visit, before any interaction with the privacy banner.
    BeforeAccept,
    /// The second visit, after consent was granted and the cache cleared.
    AfterAccept,
    /// The second visit of the opt-out experiment, after consent was
    /// explicitly REFUSED (an extension beyond the paper's protocol).
    AfterReject,
}

/// One Topics API call, as recorded by the crawler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicsCallRecord {
    /// Full host attributed as the Calling Party.
    pub caller: Domain,
    /// The CP at registrable-domain granularity (the unit of the paper's
    /// Allowed/Attested classification).
    pub caller_site: Domain,
    /// Call type (JavaScript / Fetch / IFrame).
    pub call_type: CallType,
    /// True when the call came from the root (top-level) context.
    pub root_context: bool,
    /// Host that served the calling script, if external.
    pub script_source: Option<Domain>,
    /// The browser's allow-list decision.
    pub decision: AllowDecision,
    /// Topics returned to the caller.
    pub topics_returned: usize,
    /// Timestamp of the call.
    pub timestamp: Timestamp,
}

impl TopicsCallRecord {
    /// Build from a browser instrumentation event.
    pub fn from_event(e: &TopicsCallEvent) -> TopicsCallRecord {
        Self::from_event_memo(e, &mut RegDomainMemo::new())
    }

    /// Build from an event, resolving the caller's registrable domain
    /// through `memo` — the hot path on every topics call. Callers that
    /// repeat within a visit (the common case: one tag fires on every
    /// page region) cost one hash lookup instead of a suffix scan, and
    /// equal `caller_site` values share one `Arc` allocation.
    pub fn from_event_memo(e: &TopicsCallEvent, memo: &mut RegDomainMemo) -> TopicsCallRecord {
        TopicsCallRecord {
            caller: e.caller.clone(),
            caller_site: memo.resolve(&e.caller),
            call_type: e.call_type,
            root_context: e.root_context,
            script_source: e.script_source.clone(),
            decision: e.decision,
            topics_returned: e.topics_returned,
            timestamp: e.timestamp,
        }
    }

    /// Whether the call was executed (permitted by the allow-list layer).
    pub fn permitted(&self) -> bool {
        self.decision.permits()
    }
}

/// One visit to one website.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VisitRecord {
    /// Which visit this is.
    pub phase: Phase,
    /// The ranked website (requested domain) — the identity under which
    /// the paper's per-website statistics are keyed.
    pub website: Domain,
    /// The registrable domain that actually served the page (differs for
    /// alias redirects — the §4 case-ii signature).
    pub final_website: Domain,
    /// Unique registrable domains of every object loaded, including the
    /// site itself, in first-seen order.
    pub party_domains: Vec<Domain>,
    /// Total objects requested (with multiplicity).
    pub object_count: usize,
    /// Objects that failed to load.
    pub failed_objects: usize,
    /// Every Topics API call observed during the visit.
    pub topics_calls: Vec<TopicsCallRecord>,
    /// A privacy banner was detected on the page.
    pub banner_found: bool,
    /// When the visit started.
    pub started: Timestamp,
    /// Simulated page-load duration (sum of network latencies).
    #[serde(default)]
    pub duration_ms: u64,
}

impl VisitRecord {
    /// Assemble a record from the browser's per-visit output.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        phase: Phase,
        website: Domain,
        final_website: Domain,
        objects: &[ObjectEvent],
        calls: &[TopicsCallEvent],
        banner_found: bool,
        started: Timestamp,
        duration_ms: u64,
    ) -> VisitRecord {
        let mut memo = RegDomainMemo::new();
        let mut party_domains: Vec<Domain> = Vec::new();
        let mut failed = 0usize;
        for o in objects {
            if !o.ok {
                failed += 1;
            }
            let reg = memo.resolve(o.url.host());
            if !party_domains.contains(&reg) {
                party_domains.push(reg);
            }
        }
        VisitRecord {
            phase,
            website,
            final_website,
            party_domains,
            object_count: objects.len(),
            failed_objects: failed,
            topics_calls: calls
                .iter()
                .map(|e| TopicsCallRecord::from_event_memo(e, &mut memo))
                .collect(),
            banner_found,
            started,
            duration_ms,
        }
    }

    /// Third-party registrable domains (everything except the website
    /// itself and its final serving domain).
    pub fn third_parties(&self) -> impl Iterator<Item = &Domain> {
        self.party_domains
            .iter()
            .filter(move |d| **d != self.website && **d != self.final_website)
    }

    /// True when a given party (registrable domain) was present on the
    /// page — the Figure 2 presence notion.
    pub fn has_party(&self, party: &Domain) -> bool {
        self.party_domains.contains(party)
    }
}

/// Fault-layer bookkeeping for one site: what the retry/backoff layer
/// had to do to produce (or fail to produce) the visits.
///
/// Serialized only when non-zero, so campaigns run without fault
/// injection emit byte-identical records to builds that predate the
/// fault layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Network retries issued across both visits (document hops and
    /// subresources).
    #[serde(default)]
    pub retries: u32,
    /// A visit blew through the per-visit time budget.
    #[serde(default)]
    pub timed_out: bool,
    /// The banner was actionable but the second visit failed, so the
    /// site is missing from D_AA/D_AR despite consent interaction.
    #[serde(default)]
    pub second_visit_failed: bool,
}

impl FaultStats {
    /// True when nothing fault-related happened (the serde skip gate).
    pub fn is_zero(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// The typed health of one site's crawl, derived from the record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VisitOutcome {
    /// The site was visited and no fault-layer intervention was needed.
    Complete,
    /// The site is in the dataset, but retries fired, a visit timed out,
    /// or the second visit was lost — its records may undercount.
    Degraded,
    /// The site never made it into D_BA.
    Failed,
}

impl VisitOutcome {
    /// Stable lower-case label (metric label values, trace span fields).
    pub fn label(self) -> &'static str {
        match self {
            VisitOutcome::Complete => "complete",
            VisitOutcome::Degraded => "degraded",
            VisitOutcome::Failed => "failed",
        }
    }
}

/// The outcome for one ranked site: up to two visits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteOutcome {
    /// 0-based Tranco rank.
    pub rank: usize,
    /// The ranked domain.
    pub website: Domain,
    /// The Before-Accept visit; `None` when the site failed to load
    /// (DNS/connection errors — the paper loses ≈13% of sites this way).
    pub before: Option<VisitRecord>,
    /// The second visit (After-Accept, or After-Reject in the opt-out
    /// experiment); `None` when no banner interaction succeeded.
    pub after: Option<VisitRecord>,
    /// Human-readable failure, if the site could not be visited.
    pub error: Option<String>,
    /// What the fault/retry layer observed while crawling this site.
    #[serde(default, skip_serializing_if = "FaultStats::is_zero")]
    pub faults: FaultStats,
}

impl SiteOutcome {
    /// The site was successfully visited (enters D_BA).
    pub fn visited(&self) -> bool {
        self.before.is_some()
    }

    /// The typed health of this site's crawl.
    pub fn outcome(&self) -> VisitOutcome {
        if !self.visited() {
            VisitOutcome::Failed
        } else if !self.faults.is_zero() {
            VisitOutcome::Degraded
        } else {
            VisitOutcome::Complete
        }
    }

    /// Consent was granted and the second visit ran (enters D_AA).
    pub fn accepted(&self) -> bool {
        self.after
            .as_ref()
            .is_some_and(|v| v.phase == Phase::AfterAccept)
    }

    /// Consent was explicitly refused and the second visit ran (the
    /// opt-out experiment's D_AR).
    pub fn rejected(&self) -> bool {
        self.after
            .as_ref()
            .is_some_and(|v| v.phase == Phase::AfterReject)
    }
}

/// Result of probing a domain's attestation well-known file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttestationProbe {
    /// The probed registrable domain.
    pub domain: Domain,
    /// `Some` when a valid Topics attestation was served.
    pub valid: Option<AttestationInfo>,
}

/// Extracted fields of a valid attestation file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttestationInfo {
    /// Issue timestamp (the §3 enrolment timeline).
    pub issued: Timestamp,
    /// Whether the file carries the post-October-2024 `enrollment_site`.
    pub has_enrollment_site: bool,
}

/// Version of the campaign record schema, stamped into every store
/// (the JSON header field and the columnar file header). Bump it when
/// a field changes meaning — additive `#[serde(default)]` evolution
/// (like `duration_ms`) stays within one version.
pub const CAMPAIGN_SCHEMA_VERSION: u32 = 1;

/// A store was written by a schema this build does not understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownSchemaVersion {
    /// The version found in the store header.
    pub found: u32,
    /// The newest version this build reads ([`CAMPAIGN_SCHEMA_VERSION`]).
    pub supported: u32,
}

impl std::fmt::Display for UnknownSchemaVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown campaign schema version {} (this build reads <= {})",
            self.found, self.supported
        )
    }
}

impl std::error::Error for UnknownSchemaVersion {}

/// Everything a campaign produces — the input to `topics-analysis`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// Schema version the store was written with. `0` marks a legacy
    /// file from before versioning existed (the field defaults when
    /// absent); anything above [`CAMPAIGN_SCHEMA_VERSION`] is rejected
    /// with a typed [`UnknownSchemaVersion`] at load time.
    #[serde(default)]
    pub schema_version: u32,
    /// Per-site outcomes in rank order.
    pub sites: Vec<SiteOutcome>,
    /// The allow-list snapshot, when the crawler's browser had a healthy
    /// one; `None` under the paper's corrupted-list configuration — in
    /// which case the analysis uses the separately downloaded list (the
    /// paper uses the June 6th, 2024 file).
    pub allow_list: Vec<Domain>,
    /// Attestation probes for every encountered party and every
    /// allow-listed domain.
    pub attestation_probes: Vec<AttestationProbe>,
    /// When the crawl started.
    pub started: Timestamp,
}

/// Per-[`VisitOutcome`] site counts; `complete + degraded + failed`
/// always equals the number of attempted sites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Sites crawled with no fault-layer intervention.
    pub complete: usize,
    /// Sites in the dataset with degraded coverage.
    pub degraded: usize,
    /// Sites that never entered D_BA.
    pub failed: usize,
}

impl OutcomeCounts {
    /// Total attempted sites.
    pub fn total(&self) -> usize {
        self.complete + self.degraded + self.failed
    }
}

impl CampaignOutcome {
    /// Check that this build understands the store's schema version.
    /// `0` (legacy, pre-versioning) and every version up to
    /// [`CAMPAIGN_SCHEMA_VERSION`] pass.
    pub fn check_schema(&self) -> Result<(), UnknownSchemaVersion> {
        if self.schema_version <= CAMPAIGN_SCHEMA_VERSION {
            Ok(())
        } else {
            Err(UnknownSchemaVersion {
                found: self.schema_version,
                supported: CAMPAIGN_SCHEMA_VERSION,
            })
        }
    }

    /// Number of successfully visited sites (|D_BA|).
    pub fn visited_count(&self) -> usize {
        self.sites.iter().filter(|s| s.visited()).count()
    }

    /// Partition the attempted sites by [`VisitOutcome`].
    pub fn outcome_counts(&self) -> OutcomeCounts {
        let mut counts = OutcomeCounts::default();
        for s in &self.sites {
            match s.outcome() {
                VisitOutcome::Complete => counts.complete += 1,
                VisitOutcome::Degraded => counts.degraded += 1,
                VisitOutcome::Failed => counts.failed += 1,
            }
        }
        counts
    }

    /// Number of sites with an After-Accept visit (|D_AA|).
    pub fn accepted_count(&self) -> usize {
        self.sites.iter().filter(|s| s.accepted()).count()
    }

    /// Whether a domain served a valid attestation (the paper's
    /// **Attested** label).
    pub fn is_attested(&self, domain: &Domain) -> bool {
        self.attestation_probes
            .iter()
            .any(|p| &p.domain == domain && p.valid.is_some())
    }

    /// Whether a domain is on the allow-list (the paper's **Allowed**).
    pub fn is_allowed(&self, domain: &Domain) -> bool {
        self.allow_list.contains(domain)
    }
}

/// Helper for tests: count objects of a given kind in raw events.
pub fn count_kind(objects: &[ObjectEvent], kind: ResourceKind) -> usize {
    objects.iter().filter(|o| o.kind == kind).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use topics_net::url::Url;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    fn obj(url: &str, ok: bool) -> ObjectEvent {
        ObjectEvent {
            url: Url::parse(url).unwrap(),
            kind: ResourceKind::Script,
            ok,
            timestamp: Timestamp(1),
        }
    }

    #[test]
    fn assemble_dedups_party_domains() {
        let objects = vec![
            obj("https://www.site.com/", true),
            obj("https://static.ads.com/tag.js", true),
            obj("https://ads.com/px.gif", true),
            obj("https://cdn.example.net/lib.js", false),
        ];
        let v = VisitRecord::assemble(
            Phase::BeforeAccept,
            d("site.com"),
            d("site.com"),
            &objects,
            &[],
            false,
            Timestamp(0),
            420,
        );
        assert_eq!(
            v.party_domains,
            vec![d("site.com"), d("ads.com"), d("example.net")]
        );
        assert_eq!(v.object_count, 4);
        assert_eq!(v.failed_objects, 1);
        let tp: Vec<_> = v.third_parties().cloned().collect();
        assert_eq!(tp, vec![d("ads.com"), d("example.net")]);
        assert!(v.has_party(&d("ads.com")));
        assert!(!v.has_party(&d("missing.com")));
    }

    #[test]
    fn alias_visits_keep_both_identities() {
        let objects = vec![obj("https://corp.com/", true)];
        let v = VisitRecord::assemble(
            Phase::AfterAccept,
            d("brand.com"),
            d("corp.com"),
            &objects,
            &[],
            true,
            Timestamp(0),
            180,
        );
        let tp: Vec<_> = v.third_parties().collect();
        assert!(tp.is_empty(), "the serving domain is not a third party");
    }

    #[test]
    fn outcome_counts() {
        let visit = VisitRecord::assemble(
            Phase::BeforeAccept,
            d("a.com"),
            d("a.com"),
            &[],
            &[],
            false,
            Timestamp(0),
            0,
        );
        let outcome = CampaignOutcome {
            schema_version: CAMPAIGN_SCHEMA_VERSION,
            sites: vec![
                SiteOutcome {
                    rank: 0,
                    website: d("a.com"),
                    before: Some(visit.clone()),
                    after: Some(VisitRecord {
                        phase: Phase::AfterAccept,
                        ..visit.clone()
                    }),
                    error: None,
                    faults: FaultStats::default(),
                },
                SiteOutcome {
                    rank: 1,
                    website: d("b.com"),
                    before: None,
                    after: None,
                    error: Some("NXDOMAIN".into()),
                    faults: FaultStats::default(),
                },
            ],
            allow_list: vec![d("criteo.com")],
            attestation_probes: vec![AttestationProbe {
                domain: d("criteo.com"),
                valid: Some(AttestationInfo {
                    issued: Timestamp(5),
                    has_enrollment_site: false,
                }),
            }],
            started: Timestamp(0),
        };
        assert_eq!(outcome.visited_count(), 1);
        assert_eq!(outcome.accepted_count(), 1);
        assert!(outcome.is_allowed(&d("criteo.com")));
        assert!(outcome.is_attested(&d("criteo.com")));
        assert!(!outcome.is_attested(&d("b.com")));
        let counts = outcome.outcome_counts();
        assert_eq!(
            counts,
            OutcomeCounts {
                complete: 1,
                degraded: 0,
                failed: 1
            }
        );
        assert_eq!(counts.total(), outcome.sites.len());
    }

    #[test]
    fn fault_stats_drive_the_outcome_and_stay_out_of_clean_json() {
        let visit = VisitRecord::assemble(
            Phase::BeforeAccept,
            d("a.com"),
            d("a.com"),
            &[],
            &[],
            false,
            Timestamp(0),
            0,
        );
        let mut site = SiteOutcome {
            rank: 0,
            website: d("a.com"),
            before: Some(visit),
            after: None,
            error: None,
            faults: FaultStats::default(),
        };
        assert_eq!(site.outcome(), VisitOutcome::Complete);
        let clean = serde_json::to_string(&site).unwrap();
        assert!(
            !clean.contains("faults"),
            "zero fault stats are skipped so rate-0 output is byte-stable"
        );
        // Old-format JSON (no `faults` key) still deserializes.
        let back: SiteOutcome = serde_json::from_str(&clean).unwrap();
        assert!(back.faults.is_zero());

        site.faults.retries = 2;
        assert_eq!(site.outcome(), VisitOutcome::Degraded);
        assert!(serde_json::to_string(&site).unwrap().contains("retries"));
        site.before = None;
        assert_eq!(site.outcome(), VisitOutcome::Failed);
    }

    #[test]
    fn records_serialize_round_trip() {
        let rec = TopicsCallRecord {
            caller: d("www.foo.com"),
            caller_site: d("foo.com"),
            call_type: CallType::JavaScript,
            root_context: true,
            script_source: Some(d("www.googletagmanager.com")),
            decision: AllowDecision::AllowedFailOpen,
            topics_returned: 0,
            timestamp: Timestamp(9),
        };
        let j = serde_json::to_string(&rec).unwrap();
        let back: TopicsCallRecord = serde_json::from_str(&j).unwrap();
        assert_eq!(back, rec);
        assert!(back.permitted());
    }

    #[test]
    fn schema_version_gates_unknown_futures() {
        // Legacy files carry no version field and deserialize to 0,
        // which is accepted.
        let legacy = r#"{"sites":[],"allow_list":[],"attestation_probes":[],"started":0}"#;
        let outcome: CampaignOutcome = serde_json::from_str(legacy).unwrap();
        assert_eq!(outcome.schema_version, 0);
        assert!(outcome.check_schema().is_ok());

        // Current files lead with the version and pass.
        let mut current = outcome.clone();
        current.schema_version = CAMPAIGN_SCHEMA_VERSION;
        let json = serde_json::to_string(&current).unwrap();
        assert!(json.starts_with("{\"schema_version\":1,"), "{json}");
        assert!(current.check_schema().is_ok());

        // A future version is a typed error, not a silent best-effort read.
        current.schema_version = CAMPAIGN_SCHEMA_VERSION + 1;
        let err = current.check_schema().unwrap_err();
        assert_eq!(err.found, CAMPAIGN_SCHEMA_VERSION + 1);
        assert_eq!(err.supported, CAMPAIGN_SCHEMA_VERSION);
        assert!(err.to_string().contains("unknown campaign schema version"));
    }
}
