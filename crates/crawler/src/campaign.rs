//! The measurement campaign: crawl every ranked site, then probe
//! attestations.
//!
//! Reproduces §2.2–2.4: the crawl starts March 30th, 2024, covers the
//! Tranco top list in about one day, runs with the Topics API opted in
//! and the browser's attestation allow-list **corrupted on purpose** so
//! non-enrolled callers are observable, and afterwards probes the
//! `/.well-known/privacy-sandbox-attestations.json` of every encountered
//! party (plus every allow-listed domain) to assign the *Attested* label.

use crate::metrics::CrawlMetrics;
use crate::record::{
    AttestationInfo, AttestationProbe, CampaignOutcome, SiteOutcome, CAMPAIGN_SCHEMA_VERSION,
};
use crate::visit::{
    run_site_full, run_site_traced, ConsentAction, VisitPolicy, DEFAULT_VISIT_TIMEOUT_MS,
};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use topics_browser::attestation::{AttestationStore, EnforcementMode};
use topics_net::clock::Timestamp;
use topics_net::domain::Domain;
use topics_net::fault::{FaultMetrics, FaultPlan, FaultProfile, FaultyService};
use topics_net::http::{HttpRequest, ResourceKind};
use topics_net::metrics::NetMetrics;
use topics_net::seed;
use topics_net::service::{NetworkService, RetryPolicy};
use topics_net::url::Url;
use topics_net::wellknown::{attestation_url, AttestationError, AttestationFile};
use topics_obs::alloc::{AllocDelta, AllocSpan, WindowSpan};
use topics_obs::{FieldValue, Level, Obs, TraceBuilder, Tracer};
use topics_taxonomy::Classifier;

/// The crawl start: 2024-03-30, i.e. day 303 of the simulation
/// (origin 2023-06-01).
pub const CRAWL_START_DAY: u64 = topics_net::clock::CRAWL_START_DAY;

/// The paper's attestation snapshot date: June 6th, 2024 (day 371).
pub const ATTESTATION_SNAPSHOT_DAY: u64 = 371;

/// How the crawler's browser is configured with respect to the
/// attestation allow-list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowListSetup {
    /// The paper's setup: the local list is corrupted and the (buggy)
    /// browser fails open, executing every call.
    CorruptedFailOpen,
    /// A stock browser with a healthy allow-list: non-enrolled calls are
    /// blocked (they still appear in our instrumentation, marked
    /// blocked).
    Healthy,
    /// The fixed browser with a corrupted list: everything is blocked
    /// (ablation).
    CorruptedFailClosed,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Allow-list setup (the paper uses `CorruptedFailOpen`).
    pub allow_list: AllowListSetup,
    /// Worker threads for the crawl.
    pub threads: usize,
    /// Milliseconds of simulated time between consecutive site starts
    /// (the paper's crawl covers 50k sites in about one day ⇒ ~1.7s).
    pub per_site_interval_ms: u64,
    /// Crawl start time.
    pub start: Timestamp,
    /// What to do with recognised banners (the paper accepts; the
    /// opt-out extension rejects).
    pub consent_action: ConsentAction,
    /// Where the crawler connects from (the paper: Europe).
    pub vantage: topics_net::http::Vantage,
    /// Fault-injection profile; [`FaultProfile::off`] (the default)
    /// keeps the campaign byte-identical to a build without the layer.
    pub fault: FaultProfile,
    /// Seed for the fault plan; `None` derives one from the campaign
    /// seed so faults are reproducible without extra configuration.
    pub fault_seed: Option<u64>,
    /// Per-exchange retry policy. Only honoured while the fault profile
    /// is active — with faults off the crawler never retries, which is
    /// what makes the fault layer provably zero-cost when disabled.
    pub retry: RetryPolicy,
    /// Per-visit simulated time budget (see
    /// [`DEFAULT_VISIT_TIMEOUT_MS`]).
    pub visit_timeout_ms: u64,
    /// Worker threads for the attestation-probe phase; `None` (the
    /// default) reuses [`CampaignConfig::threads`]. The probe result
    /// vector is byte-identical for every value.
    pub probe_threads: Option<usize>,
    /// Memoise probe results across campaigns in this process (keyed by
    /// world fingerprint, probe time, and domain). Off by default so a
    /// fresh process and a warm one report identical live metrics;
    /// benches, ablations, and `run_repeated` drivers opt in.
    pub probe_cache: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            allow_list: AllowListSetup::CorruptedFailOpen,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            per_site_interval_ms: 1_728, // 86,400,000 ms / 50,000 sites
            start: Timestamp::from_days(CRAWL_START_DAY),
            consent_action: ConsentAction::Accept,
            vantage: topics_net::http::Vantage::Europe,
            fault: FaultProfile::off(),
            fault_seed: None,
            retry: RetryPolicy::standard(),
            visit_timeout_ms: DEFAULT_VISIT_TIMEOUT_MS,
            probe_threads: None,
            probe_cache: false,
        }
    }
}

impl CampaignConfig {
    /// The fault plan this campaign runs under.
    pub fn fault_plan(&self, campaign_seed: u64) -> FaultPlan {
        let fault_seed = self
            .fault_seed
            .unwrap_or_else(|| seed::derive(campaign_seed, "faults"));
        FaultPlan::new(self.fault.clone(), fault_seed)
    }

    /// The per-visit policy implied by the fault plan: retries are only
    /// enabled when faults can actually occur.
    pub fn visit_policy(&self, plan: &FaultPlan) -> VisitPolicy {
        VisitPolicy {
            retry: if plan.is_active() {
                self.retry
            } else {
                RetryPolicy::none()
            },
            visit_timeout_ms: self.visit_timeout_ms,
        }
    }
}

/// A simulated web the campaign can run against: the crawl needs the
/// network service plus the ranked target list and the allow-list the
/// browser component updater would have downloaded.
pub trait CrawlTarget: NetworkService + Sync {
    /// The ranked URLs to visit, in rank order.
    fn targets(&self) -> Vec<Url>;
    /// The domains on the current attestation allow-list.
    fn allow_list_snapshot(&self) -> Vec<Domain>;
    /// The campaign seed (drives per-profile seeds and A/B keys).
    fn campaign_seed(&self) -> u64;
    /// A fingerprint identifying the served content, or `None` if the
    /// target cannot guarantee two instances with the same fingerprint
    /// serve identical responses. Only targets returning `Some` can
    /// participate in the process-wide probe memo cache.
    fn probe_cache_key(&self) -> Option<u64> {
        None
    }
}

impl CrawlTarget for topics_webgen::World {
    fn targets(&self) -> Vec<Url> {
        self.tranco_list()
    }
    fn allow_list_snapshot(&self) -> Vec<Domain> {
        self.allow_list()
    }
    fn campaign_seed(&self) -> u64 {
        self.seed()
    }
    fn probe_cache_key(&self) -> Option<u64> {
        Some(self.fingerprint())
    }
}

/// Attribute a measured allocation delta to a builder span. Nothing is
/// attached for an empty delta (counting disabled), and the stripped
/// trace view drops these fields regardless, so same-seed traces stay
/// byte-identical whether or not instrumentation ran.
fn attribute_alloc(tb: &mut TraceBuilder, idx: usize, delta: &AllocDelta) {
    if delta.is_zero() {
        return;
    }
    tb.field(idx, "alloc_bytes", delta.alloc_bytes);
    tb.field(idx, "alloc_count", delta.alloc_count);
    tb.field(idx, "peak_bytes", delta.peak_bytes);
}

/// Build the browser-side attestation store for a setup.
pub fn build_store(setup: AllowListSetup, allow_list: &[Domain]) -> AttestationStore {
    match setup {
        AllowListSetup::CorruptedFailOpen => AttestationStore::corrupted(),
        AllowListSetup::Healthy => AttestationStore::healthy(allow_list.iter().cloned()),
        AllowListSetup::CorruptedFailClosed => {
            AttestationStore::corrupted().with_mode(EnforcementMode::FailClosed)
        }
    }
}

/// Run the full campaign.
pub fn run_campaign<W: CrawlTarget + ?Sized>(
    world: &W,
    config: &CampaignConfig,
) -> CampaignOutcome {
    run_campaign_with_progress(world, config, |_done, _total| {})
}

/// [`run_campaign`] with a progress callback, invoked roughly every 500
/// completed sites with `(done, total)` (from whichever worker crosses
/// the boundary — counts are monotone but not strictly sequential).
pub fn run_campaign_with_progress<W, F>(
    world: &W,
    config: &CampaignConfig,
    progress: F,
) -> CampaignOutcome
where
    W: CrawlTarget + ?Sized,
    F: Fn(usize, usize) + Sync,
{
    run_campaign_observed(world, config, None, progress)
}

/// [`run_campaign_with_progress`] with observability attached: live
/// per-worker throughput counters, browser-level network and
/// Topics-call series, per-site visit events, and `crawl` /
/// `attestation-probe` phase spans in the event log.
pub fn run_campaign_observed<W, F>(
    world: &W,
    config: &CampaignConfig,
    obs: Option<&Obs>,
    progress: F,
) -> CampaignOutcome
where
    W: CrawlTarget + ?Sized,
    F: Fn(usize, usize) + Sync,
{
    run_campaign_inner(world, config, None, obs, progress)
}

/// Run one rank stripe of the campaign — the shard body.
///
/// The stripe only restricts which sites are *visited*: ranks, visit
/// start times, the crawl-end timestamp and hence the probe time are
/// all derived from the **global** target list, so every per-site
/// record (and every probe result) is byte-identical to the one the
/// unsharded run produces for the same rank. The probe set is the
/// allow-list plus the parties this stripe actually encountered; since
/// probe results are pure functions of `(domain, probe_time)` under a
/// shared fault seed, segments from disjoint stripes merge back into
/// the single-process outcome (see `crate::shard`).
///
/// # Panics
///
/// Panics if `stripe` is not contained in `0..targets.len()`.
pub fn run_campaign_stripe<W, F>(
    world: &W,
    config: &CampaignConfig,
    stripe: std::ops::Range<usize>,
    obs: Option<&Obs>,
    progress: F,
) -> CampaignOutcome
where
    W: CrawlTarget + ?Sized,
    F: Fn(usize, usize) + Sync,
{
    run_campaign_inner(world, config, Some(stripe), obs, progress)
}

fn run_campaign_inner<W, F>(
    world: &W,
    config: &CampaignConfig,
    stripe: Option<std::ops::Range<usize>>,
    obs: Option<&Obs>,
    progress: F,
) -> CampaignOutcome
where
    W: CrawlTarget + ?Sized,
    F: Fn(usize, usize) + Sync,
{
    let metrics = obs.map(|o| CrawlMetrics::new(&o.metrics));
    let targets = world.targets();
    let stripe = stripe.unwrap_or(0..targets.len());
    assert!(
        stripe.start <= stripe.end && stripe.end <= targets.len(),
        "stripe {stripe:?} outside 0..{}",
        targets.len()
    );
    let allow_list = world.allow_list_snapshot();
    let plan = config.fault_plan(world.campaign_seed());
    let policy = config.visit_policy(&plan);
    // The §2.3 corruption coin: under fault injection, a campaign that
    // asked for a *healthy* allow-list may find its downloaded component
    // corrupt — which (in the buggy browser) silently fails open, exactly
    // the failure mode the paper stumbled into. The paper's own setup
    // corrupts the list on purpose, so it cannot be corrupted further.
    let effective_setup =
        if plan.corrupt_allow_list() && config.allow_list == AllowListSetup::Healthy {
            AllowListSetup::CorruptedFailOpen
        } else {
            config.allow_list
        };
    let store = build_store(effective_setup, &allow_list);
    let classifier = Arc::new(Classifier::new(world.campaign_seed()));
    let seed = world.campaign_seed();
    let fault_metrics = obs.map(|o| FaultMetrics::new(&o.metrics));
    let faulty = match fault_metrics {
        Some(fm) => FaultyService::new(world, plan.clone()).with_metrics(fm),
        None => FaultyService::new(world, plan.clone()),
    };
    let service: &FaultyService<'_, W> = &faulty;

    let threads = config.threads.max(1);
    let stripe_start = stripe.start;
    let stripe_len = stripe.len();
    let done = std::sync::atomic::AtomicUsize::new(0);
    let crawl_span = obs.map(|o| o.events.span("crawl"));
    // Trace wiring: each worker records its visits into private builders
    // (no shared state on the hot path); the coordinator attaches them
    // under the `crawl` phase span in rank order, so span IDs are
    // byte-identical for every thread count. Worker utilization rides
    // along as operational spans, excluded from the stripped view.
    let tracer: Option<&Tracer> = obs.map(|o| &o.trace).filter(|t| t.is_enabled());
    let crawl_tspan = tracer.map(|t| t.phase("crawl"));
    // Process-wide allocation window for the whole crawl phase (all
    // worker threads included); no-op unless the counting allocator is
    // enabled. Phases are sequential, so the windows never overlap.
    let crawl_window = WindowSpan::start();
    if let Some(o) = obs {
        o.metrics
            .labeled_gauge("phase_workers", "phase", "crawl")
            .set(threads as i64);
    }
    let mut pairs: Vec<(SiteOutcome, Option<TraceBuilder>)> = Vec::with_capacity(stripe_len);
    let mut worker_traces: Vec<TraceBuilder> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let targets = &targets;
            let store = store.clone();
            let classifier = classifier.clone();
            let done = &done;
            let progress = &progress;
            let metrics = metrics.clone();
            handles.push(scope.spawn(move || {
                let worker_sites = obs.map(|o| {
                    o.metrics
                        .labeled_counter("crawl_worker_sites_total", "worker", &t.to_string())
                });
                let mut op = tracer.and_then(Tracer::visit_builder);
                let op_span = op.as_mut().map(|tb| {
                    let idx = tb.open_op("worker", None);
                    tb.field(idx, "phase", "crawl");
                    tb.field(idx, "worker", t);
                    idx
                });
                let worker_started = std::time::Instant::now();
                let mut busy_us = 0u64;
                let mut items = 0u64;
                let mut out: Vec<(SiteOutcome, Option<TraceBuilder>)> = Vec::new();
                // Workers stride over stripe *offsets*; the rank fed to
                // the visit (timestamps, per-profile seeds) stays global
                // so sharded and unsharded records coincide.
                let mut off = t;
                while off < stripe_len {
                    let rank = stripe_start + off;
                    let started = config
                        .start
                        .plus_millis(rank as u64 * config.per_site_interval_ms);
                    let mut vtrace = tracer.and_then(Tracer::visit_builder);
                    let item_started = std::time::Instant::now();
                    // Thread-local allocation scope for this visit; the
                    // visit root is always builder span index 0.
                    let vspan = AllocSpan::start();
                    let outcome = run_site_traced(
                        service,
                        &targets[rank],
                        rank,
                        classifier.clone(),
                        store.clone(),
                        seed,
                        started,
                        config.consent_action,
                        config.vantage,
                        metrics.as_ref(),
                        &policy,
                        vtrace.as_mut(),
                    );
                    let valloc = vspan.finish();
                    if let Some(tb) = vtrace.as_mut() {
                        attribute_alloc(tb, 0, &valloc);
                    }
                    busy_us += item_started.elapsed().as_micros() as u64;
                    items += 1;
                    if let Some(c) = &worker_sites {
                        c.inc();
                    }
                    if let Some(o) = obs {
                        o.events.event(
                            Level::Debug,
                            "visit",
                            Some(started.millis()),
                            vec![
                                ("rank".to_owned(), FieldValue::U64(rank as u64)),
                                (
                                    "website".to_owned(),
                                    FieldValue::Str(outcome.website.to_string()),
                                ),
                                ("visited".to_owned(), FieldValue::Bool(outcome.visited())),
                                ("accepted".to_owned(), FieldValue::Bool(outcome.accepted())),
                            ],
                        );
                    }
                    out.push((outcome, vtrace));
                    let n = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                    if n % 500 == 0 || n == stripe_len {
                        progress(n, stripe_len);
                    }
                    off += threads;
                }
                if let (Some(tb), Some(idx)) = (op.as_mut(), op_span) {
                    tb.field(idx, "busy_us", busy_us);
                    tb.field(idx, "span_us", worker_started.elapsed().as_micros() as u64);
                    tb.field(idx, "items", items);
                    tb.close(idx, None);
                }
                (out, op)
            }));
        }
        for handle in handles {
            let (out, op) = handle.join().expect("crawl worker panicked");
            pairs.extend(out);
            worker_traces.extend(op);
        }
    });
    pairs.sort_by_key(|(s, _)| s.rank);
    let mut sites: Vec<SiteOutcome> = Vec::with_capacity(pairs.len());
    let mut crawl_sim_end = config.start.millis();
    for (site, vtrace) in pairs {
        if let (Some(span), Some(tb)) = (crawl_tspan.as_ref(), vtrace) {
            if let Some(end) = tb.max_sim_end() {
                crawl_sim_end = crawl_sim_end.max(end);
            }
            span.attach(tb);
        }
        sites.push(site);
    }
    let crawl_alloc = crawl_window.finish();
    if let Some(o) = obs {
        if !crawl_alloc.is_zero() {
            o.metrics
                .labeled_gauge("mem_phase_alloc_bytes", "phase", "crawl")
                .set(crawl_alloc.alloc_bytes as i64);
            o.metrics
                .labeled_gauge("mem_phase_peak_bytes", "phase", "crawl")
                .set(crawl_alloc.peak_bytes as i64);
        }
    }
    if let Some(span) = crawl_tspan {
        for tb in worker_traces {
            span.attach(tb);
        }
        span.field("sites", sites.len());
        if !crawl_alloc.is_zero() {
            span.field("alloc_bytes", crawl_alloc.alloc_bytes);
            span.field("alloc_count", crawl_alloc.alloc_count);
            span.field("peak_bytes", crawl_alloc.peak_bytes);
        }
        span.end(Some((config.start.millis(), crawl_sim_end)));
    }
    if let Some(mut span) = crawl_span {
        span.field("sites", stripe_len);
        if let Some(o) = obs {
            o.metrics
                .labeled_gauge("phase_wall_us", "phase", "crawl")
                .set(span.elapsed_us() as i64);
        }
        span.end();
    }

    // ---- Attestation probing (§2.3) ----------------------------------
    // Probe every encountered party (first and third) plus every domain
    // on the allow-list, once. The paper's crawl ran on March 30th, 2024
    // but its attestation snapshot is from June 6th, 2024 (day 371) —
    // which is how it can see enrolment dates up to May 2024 — so the
    // probe happens at whichever is later: crawl end or that snapshot
    // date.
    let crawl_end = config
        .start
        .plus_millis(targets.len() as u64 * config.per_site_interval_ms);
    let probe_time = crawl_end.max(Timestamp::from_days(ATTESTATION_SNAPSHOT_DAY));
    // Collect by reference: each distinct domain is cloned exactly once,
    // inside the probe result it ends up in anyway.
    let mut to_probe: BTreeSet<&Domain> = allow_list.iter().collect();
    for s in &sites {
        for v in s.before.iter().chain(s.after.iter()) {
            to_probe.extend(v.party_domains.iter());
            to_probe.extend(v.topics_calls.iter().map(|c| &c.caller_site));
        }
    }
    let domains: Vec<&Domain> = to_probe.into_iter().collect();
    let probe_threads = config.probe_threads.unwrap_or(threads).max(1);
    let probe_span = obs.map(|o| o.events.span("attestation-probe"));
    let probe_tspan = tracer.map(|t| t.phase("attestation-probe"));
    let probe_window = WindowSpan::start();
    if let Some(o) = obs {
        o.metrics
            .labeled_gauge("phase_workers", "phase", "attestation-probe")
            .set(probe_threads as i64);
    }

    // The memo cache only applies when the target vouches for its
    // content (a fingerprint) and no fault plan can perturb responses.
    let memo_key = if config.probe_cache && !plan.is_active() {
        world.probe_cache_key().map(|fp| (fp, probe_time.millis()))
    } else {
        None
    };
    let mut results: Vec<Option<AttestationProbe>> = Vec::new();
    results.resize_with(domains.len(), || None);
    let mut pending: Vec<(usize, &Domain)> = Vec::with_capacity(domains.len());
    match memo_key {
        Some(key) => {
            let cache = probe_memo().lock();
            match cache.get(&key) {
                Some(warm) => {
                    for (i, d) in domains.iter().enumerate() {
                        match warm.get(*d) {
                            Some(p) => results[i] = Some(p.clone()),
                            None => pending.push((i, *d)),
                        }
                    }
                }
                None => pending.extend(domains.iter().copied().enumerate()),
            }
        }
        None => pending.extend(domains.iter().copied().enumerate()),
    }
    if let Some(o) = obs {
        if memo_key.is_some() {
            o.metrics
                .counter("attestation_probe_cache_hits_total")
                .add((domains.len() - pending.len()) as u64);
        }
    }
    let cache_hits = domains.len() - pending.len();
    let (fetched, probe_workers) = probe_indexed(
        service,
        &pending,
        probe_time,
        &policy.retry,
        probe_threads,
        obs,
        tracer,
        metrics.as_ref().map(|m| &m.net),
    );
    if let Some(key) = memo_key {
        if !fetched.is_empty() {
            let mut cache = probe_memo().lock();
            let warm = cache.entry(key).or_default();
            for (_, probe, _) in &fetched {
                warm.insert(probe.domain.clone(), probe.clone());
            }
        }
    }
    let mut probe_traces: Vec<Option<TraceBuilder>> = Vec::new();
    probe_traces.resize_with(domains.len(), || None);
    for (idx, probe, ptrace) in fetched {
        results[idx] = Some(probe);
        probe_traces[idx] = ptrace;
    }
    let probe_alloc = probe_window.finish();
    if let Some(o) = obs {
        if !probe_alloc.is_zero() {
            o.metrics
                .labeled_gauge("mem_phase_alloc_bytes", "phase", "attestation-probe")
                .set(probe_alloc.alloc_bytes as i64);
            o.metrics
                .labeled_gauge("mem_phase_peak_bytes", "phase", "attestation-probe")
                .set(probe_alloc.peak_bytes as i64);
        }
    }
    // Attach probe span trees in slot (= sorted-domain) order so trace
    // output is independent of which worker won which domain.
    if let Some(span) = probe_tspan {
        let mut sim_end = probe_time.millis();
        for tb in probe_traces.into_iter().flatten() {
            if let Some(end) = tb.max_sim_end() {
                sim_end = sim_end.max(end);
            }
            span.attach(tb);
        }
        for tb in probe_workers {
            span.attach(tb);
        }
        span.field("probes", pending.len());
        span.field("cache_hits", cache_hits);
        if !probe_alloc.is_zero() {
            span.field("alloc_bytes", probe_alloc.alloc_bytes);
            span.field("alloc_count", probe_alloc.alloc_count);
            span.field("peak_bytes", probe_alloc.peak_bytes);
        }
        span.end(Some((probe_time.millis(), sim_end)));
    }
    let attestation_probes: Vec<AttestationProbe> = results
        .into_iter()
        .map(|p| p.expect("every probe slot is filled"))
        .collect();
    if let Some(mut span) = probe_span {
        span.field("probes", attestation_probes.len());
        if let Some(o) = obs {
            o.metrics
                .labeled_gauge("phase_wall_us", "phase", "attestation-probe")
                .set(span.elapsed_us() as i64);
        }
        span.end();
    }

    CampaignOutcome {
        schema_version: CAMPAIGN_SCHEMA_VERSION,
        sites,
        allow_list,
        attestation_probes,
        started: config.start,
    }
}

/// The process-wide probe memo: `(world fingerprint, probe-time millis)`
/// scopes a map from domain to its probe result. Entries are only ever
/// written (and read) for fault-free campaigns against targets that
/// vouch for their content via [`CrawlTarget::probe_cache_key`], so a
/// warm hit is byte-identical to a fresh fetch.
type ProbeMemo = HashMap<(u64, u64), HashMap<Domain, AttestationProbe>>;

fn probe_memo() -> &'static parking_lot::Mutex<ProbeMemo> {
    static PROBE_MEMO: OnceLock<parking_lot::Mutex<ProbeMemo>> = OnceLock::new();
    PROBE_MEMO.get_or_init(|| parking_lot::Mutex::new(HashMap::new()))
}

/// Drop every memoised probe result (test/bench hygiene).
pub fn clear_probe_memo() {
    probe_memo().lock().clear();
}

/// Probe every domain in `domains` (pre-sorted by the caller) at
/// `probe_time`, fanning the work across `threads` scoped workers.
///
/// Workers claim domains through a shared atomic cursor over the stable
/// slice and ship each result back tagged with its index, so the
/// returned vector is byte-identical to a sequential pass regardless of
/// `threads`. Retry backoff keys derive from the domain and timestamp
/// alone ([`probe_attestation_retrying`]), so fault schedules reproduce
/// under any worker layout too.
pub fn probe_domains<S: NetworkService + Sync + ?Sized>(
    service: &S,
    domains: &[&Domain],
    probe_time: Timestamp,
    retry: &RetryPolicy,
    threads: usize,
    obs: Option<&Obs>,
    net_metrics: Option<&NetMetrics>,
) -> Vec<AttestationProbe> {
    let pending: Vec<(usize, &Domain)> = domains.iter().copied().enumerate().collect();
    let mut results: Vec<Option<AttestationProbe>> = Vec::new();
    results.resize_with(domains.len(), || None);
    let (fetched, _workers) = probe_indexed(
        service,
        &pending,
        probe_time,
        retry,
        threads,
        obs,
        None,
        net_metrics,
    );
    for (idx, probe, _) in fetched {
        results[idx] = Some(probe);
    }
    results
        .into_iter()
        .map(|p| p.expect("every probe slot is filled"))
        .collect()
}

/// Probe the `(slot, domain)` pairs in `pending`, returning each result
/// tagged with its slot (plus its span tree when tracing), and one
/// operational worker-utilization builder per probe worker. One code
/// path for any worker count: workers pull the next pair via an atomic
/// cursor, so finish order is racy but the tagged results are not.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn probe_indexed<S: NetworkService + Sync + ?Sized>(
    service: &S,
    pending: &[(usize, &Domain)],
    probe_time: Timestamp,
    retry: &RetryPolicy,
    threads: usize,
    obs: Option<&Obs>,
    tracer: Option<&Tracer>,
    net_metrics: Option<&NetMetrics>,
) -> (
    Vec<(usize, AttestationProbe, Option<TraceBuilder>)>,
    Vec<TraceBuilder>,
) {
    let probes_sent = obs.map(|o| o.metrics.counter("attestation_probes_sent_total"));
    let probe_one = |domain: &Domain| {
        if let Some(c) = &probes_sent {
            c.inc();
        }
        let mut tb = tracer.and_then(Tracer::visit_builder);
        // Thread-local allocation scope for this probe; the probe root
        // is always builder span index 0.
        let aspan = AllocSpan::start();
        let probe =
            probe_attestation_traced(service, domain, probe_time, retry, net_metrics, tb.as_mut());
        let delta = aspan.finish();
        if let Some(tb) = tb.as_mut() {
            attribute_alloc(tb, 0, &delta);
        }
        (probe, tb)
    };
    let threads = threads.max(1).min(pending.len());
    if threads <= 1 {
        let out = pending
            .iter()
            .map(|&(idx, domain)| {
                let (probe, tb) = probe_one(domain);
                (idx, probe, tb)
            })
            .collect();
        return (out, Vec::new());
    }
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<(usize, AttestationProbe, Option<TraceBuilder>)> =
        Vec::with_capacity(pending.len());
    let mut workers: Vec<TraceBuilder> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let cursor = &cursor;
            let probe_one = &probe_one;
            handles.push(scope.spawn(move || {
                let mut op = tracer.and_then(Tracer::visit_builder);
                let op_span = op.as_mut().map(|tb| {
                    let idx = tb.open_op("worker", None);
                    tb.field(idx, "phase", "attestation-probe");
                    tb.field(idx, "worker", t);
                    idx
                });
                let worker_started = std::time::Instant::now();
                let mut busy_us = 0u64;
                let mut mine: Vec<(usize, AttestationProbe, Option<TraceBuilder>)> = Vec::new();
                loop {
                    let at = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(idx, domain)) = pending.get(at) else {
                        break;
                    };
                    let item_started = std::time::Instant::now();
                    let (probe, tb) = probe_one(domain);
                    busy_us += item_started.elapsed().as_micros() as u64;
                    mine.push((idx, probe, tb));
                }
                if let Some(o) = obs {
                    // Which worker won which domain is scheduler-racy, so
                    // per-worker tallies live in the event log, not the
                    // (byte-compared) metrics snapshot.
                    o.events.event(
                        Level::Debug,
                        "probe-worker",
                        None,
                        vec![
                            ("worker".to_owned(), FieldValue::U64(t as u64)),
                            ("domains".to_owned(), FieldValue::U64(mine.len() as u64)),
                        ],
                    );
                }
                if let (Some(tb), Some(idx)) = (op.as_mut(), op_span) {
                    tb.field(idx, "busy_us", busy_us);
                    tb.field(idx, "span_us", worker_started.elapsed().as_micros() as u64);
                    tb.field(idx, "items", mine.len());
                    tb.close(idx, None);
                }
                (mine, op)
            }));
        }
        for handle in handles {
            let (mine, op) = handle.join().expect("probe worker panicked");
            out.extend(mine);
            workers.extend(op);
        }
    });
    (out, workers)
}

/// Probe one domain's attestation file (single attempt, no retries —
/// the pre-fault-layer behaviour, kept for benchmarks and ablations).
pub fn probe_attestation<S: NetworkService + ?Sized>(
    service: &S,
    domain: &Domain,
    now: Timestamp,
) -> AttestationProbe {
    probe_attestation_retrying(service, domain, now, &RetryPolicy::none(), None)
}

/// [`probe_attestation`] with bounded retry on the simulated clock.
///
/// Transient failures — connection resets, injected timeouts, HTTP 5xx,
/// and *malformed* attestation JSON (what a fault-truncated body parses
/// as) — are re-fetched after backoff, each attempt drawing a fresh
/// fault coin because simulated time has advanced. Definitive answers
/// (404, a well-formed file that fails validation, a dead DNS name)
/// return immediately.
pub fn probe_attestation_retrying<S: NetworkService + ?Sized>(
    service: &S,
    domain: &Domain,
    now: Timestamp,
    policy: &RetryPolicy,
    metrics: Option<&NetMetrics>,
) -> AttestationProbe {
    probe_attestation_traced(service, domain, now, policy, metrics, None)
}

/// [`probe_attestation_retrying`] recording a `probe` span (with a
/// `retry` leaf per backoff wait) into `trace` when given.
pub fn probe_attestation_traced<S: NetworkService + ?Sized>(
    service: &S,
    domain: &Domain,
    now: Timestamp,
    policy: &RetryPolicy,
    metrics: Option<&NetMetrics>,
    mut trace: Option<&mut TraceBuilder>,
) -> AttestationProbe {
    let url = attestation_url(domain);
    let key = seed::derive_idx(seed::fnv1a(url.to_string().as_bytes()), now.millis());
    let req = HttpRequest::get(url, ResourceKind::WellKnown);
    let span = trace.as_deref_mut().map(|tb| {
        let idx = tb.open("probe", Some(now.millis()));
        tb.field(idx, "domain", domain.as_str());
        idx
    });
    let finish =
        |probe: AttestationProbe, trace: Option<&mut TraceBuilder>, waited: u64, retries: u64| {
            if let (Some(tb), Some(idx)) = (trace, span) {
                tb.field(idx, "attested", probe.valid.is_some());
                if retries > 0 {
                    tb.field(idx, "retries", retries);
                }
                tb.close(idx, Some(now.millis() + waited + 1));
            }
            probe
        };
    let mut waited = 0u64;
    let mut attempt = 1u32;
    loop {
        let result = service.fetch(&req, now.plus_millis(waited));
        let transient = match &result {
            Ok(r) if r.status.is_success() => match AttestationFile::parse_and_validate(&r.body) {
                Ok(f) => {
                    return finish(
                        AttestationProbe {
                            domain: domain.clone(),
                            valid: Some(AttestationInfo {
                                issued: f.issued,
                                has_enrollment_site: f.enrollment_site.is_some(),
                            }),
                        },
                        trace,
                        waited,
                        u64::from(attempt - 1),
                    )
                }
                Err(AttestationError::Malformed) => true,
                Err(_) => false,
            },
            Ok(r) => r.status.is_server_error(),
            Err(e) => e.is_transient(),
        };
        if !transient || attempt >= policy.max_attempts {
            if transient && !policy.is_none() {
                if let Some(m) = metrics {
                    m.record_retries_exhausted();
                }
            }
            return finish(
                AttestationProbe {
                    domain: domain.clone(),
                    valid: None,
                },
                trace,
                waited,
                u64::from(attempt - 1),
            );
        }
        let backoff = policy.backoff_ms(attempt, key);
        if let Some(tb) = trace.as_deref_mut() {
            let failed_at = now.millis() + waited;
            let leaf = tb.leaf("retry", Some(failed_at), Some(failed_at + backoff));
            tb.field(leaf, "host", domain.as_str());
            tb.field(leaf, "attempt", u64::from(attempt));
            tb.field(leaf, "backoff_ms", backoff);
        }
        waited += backoff;
        attempt += 1;
        if let Some(m) = metrics {
            m.record_retry();
        }
    }
}

/// Re-visit a fixed set of sites repeatedly over time with persistent
/// per-site consent — the §3 "repeated tests" that expose ON/OFF
/// alternation of A/B arms. Returns, for each requested time, the
/// outcomes in the same order as `urls`.
pub fn run_repeated<W: CrawlTarget + ?Sized>(
    world: &W,
    urls: &[Url],
    times: &[Timestamp],
    config: &CampaignConfig,
) -> Vec<Vec<SiteOutcome>> {
    let allow_list = world.allow_list_snapshot();
    let store = build_store(config.allow_list, &allow_list);
    let classifier = Arc::new(Classifier::new(world.campaign_seed()));
    times
        .iter()
        .map(|&t| {
            urls.iter()
                .enumerate()
                .map(|(rank, url)| {
                    run_site_full(
                        world,
                        url,
                        rank,
                        classifier.clone(),
                        store.clone(),
                        world.campaign_seed(),
                        t,
                        config.consent_action,
                        config.vantage,
                    )
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Phase;
    use topics_webgen::{World, WorldConfig};

    fn small_campaign(seed: u64, n: usize) -> (World, CampaignOutcome) {
        let world = World::generate(WorldConfig::scaled(seed, n));
        let config = CampaignConfig {
            threads: 4,
            ..Default::default()
        };
        let outcome = run_campaign(&world, &config);
        (world, outcome)
    }

    #[test]
    fn campaign_covers_all_sites_in_rank_order() {
        let (_, outcome) = small_campaign(51, 400);
        assert_eq!(outcome.sites.len(), 400);
        for (i, s) in outcome.sites.iter().enumerate() {
            assert_eq!(s.rank, i);
        }
        let visited = outcome.visited_count();
        assert!(
            (320..=380).contains(&visited),
            "≈87% of 400 visited, got {visited}"
        );
        let accepted = outcome.accepted_count();
        assert!(
            (80..=180).contains(&accepted),
            "≈30% accepted, got {accepted}"
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let (_, a) = small_campaign(53, 150);
        let (_, b) = small_campaign(53, 150);
        assert_eq!(a.visited_count(), b.visited_count());
        assert_eq!(a.accepted_count(), b.accepted_count());
        for (x, y) in a.sites.iter().zip(&b.sites) {
            assert_eq!(x.website, y.website);
            let calls = |s: &SiteOutcome| {
                s.before
                    .iter()
                    .chain(s.after.iter())
                    .map(|v| v.topics_calls.len())
                    .sum::<usize>()
            };
            assert_eq!(calls(x), calls(y));
        }
    }

    #[test]
    fn corrupted_list_permits_everything_healthy_blocks_unenrolled() {
        let world = World::generate(WorldConfig::scaled(55, 500));
        let corrupted = run_campaign(
            &world,
            &CampaignConfig {
                threads: 4,
                allow_list: AllowListSetup::CorruptedFailOpen,
                ..Default::default()
            },
        );
        let healthy = run_campaign(
            &world,
            &CampaignConfig {
                threads: 4,
                allow_list: AllowListSetup::Healthy,
                ..Default::default()
            },
        );
        let permitted_unallowed = |o: &CampaignOutcome| {
            o.sites
                .iter()
                .flat_map(|s| s.before.iter().chain(s.after.iter()))
                .flat_map(|v| v.topics_calls.iter())
                .filter(|c| c.permitted() && !o.is_allowed(&c.caller_site))
                .count()
        };
        assert!(
            permitted_unallowed(&corrupted) > 0,
            "fail-open exposes anomalous callers"
        );
        assert_eq!(
            permitted_unallowed(&healthy),
            0,
            "a healthy list blocks all non-enrolled callers"
        );
    }

    #[test]
    fn attestation_probes_cover_allow_list_and_match_ground_truth() {
        let (world, outcome) = small_campaign(57, 200);
        for p in world.registry() {
            if p.allowed {
                let probed = outcome
                    .attestation_probes
                    .iter()
                    .find(|pr| pr.domain == p.domain)
                    .expect("every allow-listed domain probed");
                assert_eq!(
                    probed.valid.is_some(),
                    p.attested,
                    "{} attested mismatch",
                    p.domain
                );
            }
        }
        // Encountered ranked sites are probed too (and are not attested).
        let some_site = outcome
            .sites
            .iter()
            .find(|s| s.visited() && s.website.as_str() != "distillery.com")
            .unwrap();
        assert!(outcome
            .attestation_probes
            .iter()
            .any(|pr| pr.domain == some_site.website && pr.valid.is_none()));
    }

    #[test]
    fn progress_callback_fires_and_reaches_the_total() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let world = World::generate(WorldConfig::scaled(63, 1_000));
        let calls = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        let outcome = super::run_campaign_with_progress(
            &world,
            &CampaignConfig {
                threads: 4,
                ..Default::default()
            },
            |done, total| {
                calls.fetch_add(1, Ordering::Relaxed);
                assert_eq!(total, 1_000);
                max_seen.fetch_max(done, Ordering::Relaxed);
            },
        );
        assert_eq!(outcome.sites.len(), 1_000);
        assert!(calls.load(Ordering::Relaxed) >= 2, "every-500 plus final");
        assert_eq!(max_seen.load(Ordering::Relaxed), 1_000);
    }

    #[test]
    fn visits_are_timestamped_along_the_crawl() {
        let (_, outcome) = small_campaign(59, 100);
        let starts: Vec<_> = outcome
            .sites
            .iter()
            .filter_map(|s| s.before.as_ref())
            .map(|v| v.started)
            .collect();
        for w in starts.windows(2) {
            assert!(w[0] < w[1], "site start times increase with rank");
        }
        for s in &outcome.sites {
            if let (Some(b), Some(a)) = (&s.before, &s.after) {
                assert!(a.started > b.started);
                assert_eq!(a.phase, Phase::AfterAccept);
            }
        }
    }

    #[test]
    fn probe_thread_count_does_not_change_probe_results() {
        let world = World::generate(WorldConfig::scaled(71, 150));
        let outcomes: Vec<CampaignOutcome> = [1usize, 3, 8]
            .iter()
            .map(|&pt| {
                run_campaign(
                    &world,
                    &CampaignConfig {
                        threads: 2,
                        probe_threads: Some(pt),
                        ..Default::default()
                    },
                )
            })
            .collect();
        assert_eq!(
            outcomes[0].attestation_probes,
            outcomes[1].attestation_probes
        );
        assert_eq!(
            outcomes[0].attestation_probes,
            outcomes[2].attestation_probes
        );
    }

    #[test]
    fn probe_domains_matches_sequential_order_for_any_thread_count() {
        let world = World::generate(WorldConfig::scaled(77, 80));
        let allow = world.allow_list_snapshot();
        let domains: Vec<&Domain> = allow.iter().collect();
        let t = Timestamp::from_days(ATTESTATION_SNAPSHOT_DAY);
        let seq = probe_domains(&world, &domains, t, &RetryPolicy::none(), 1, None, None);
        for threads in [2, 5, 16] {
            let par = probe_domains(
                &world,
                &domains,
                t,
                &RetryPolicy::none(),
                threads,
                None,
                None,
            );
            assert_eq!(seq, par, "probe order diverged at {threads} threads");
        }
        assert_eq!(seq.len(), domains.len());
        for (d, p) in domains.iter().zip(&seq) {
            assert_eq!(**d, p.domain);
        }
    }

    #[test]
    fn probe_memo_cache_is_transparent_and_skips_refetch() {
        use topics_obs::Obs;
        let world = World::generate(WorldConfig::scaled(79, 120));
        clear_probe_memo();
        let cold = run_campaign(
            &world,
            &CampaignConfig {
                threads: 2,
                ..Default::default()
            },
        );
        let warm_cfg = CampaignConfig {
            threads: 2,
            probe_cache: true,
            ..Default::default()
        };
        let first = run_campaign(&world, &warm_cfg);
        let obs = Obs::new();
        let second = run_campaign_observed(&world, &warm_cfg, Some(&obs), |_, _| {});
        assert_eq!(cold.attestation_probes, first.attestation_probes);
        assert_eq!(first.attestation_probes, second.attestation_probes);
        let s = obs.metrics.snapshot();
        assert_eq!(
            s.counter("attestation_probes_sent_total"),
            0,
            "warm run re-fetches nothing"
        );
        assert_eq!(
            s.counter("attestation_probe_cache_hits_total"),
            second.attestation_probes.len() as u64
        );
        // A fault profile disables the cache even when requested.
        let faulty_cfg = CampaignConfig {
            threads: 2,
            probe_cache: true,
            fault: FaultProfile::uniform(0.05),
            ..Default::default()
        };
        let obs2 = Obs::new();
        run_campaign_observed(&world, &faulty_cfg, Some(&obs2), |_, _| {});
        let s2 = obs2.metrics.snapshot();
        assert_eq!(s2.counter("attestation_probe_cache_hits_total"), 0);
        assert!(s2.counter("attestation_probes_sent_total") > 0);
        clear_probe_memo();
    }

    #[test]
    fn repeated_visits_share_ab_assignment_with_campaigns() {
        let world = World::generate(WorldConfig::scaled(61, 120));
        let config = CampaignConfig {
            threads: 2,
            ..Default::default()
        };
        let urls: Vec<Url> = world.targets().into_iter().take(10).collect();
        let t0 = Timestamp::from_days(CRAWL_START_DAY);
        let rounds = run_repeated(&world, &urls, &[t0, t0.plus_days(1)], &config);
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].len(), 10);
        // Same URL at the same time gives identical call sets.
        let again = run_repeated(&world, &urls, &[t0], &config);
        for (a, b) in rounds[0].iter().zip(&again[0]) {
            let count =
                |s: &SiteOutcome| s.before.as_ref().map(|v| v.topics_calls.len()).unwrap_or(0);
            assert_eq!(count(a), count(b));
        }
    }
}
