//! Sharded campaigns: rank-stripe planning, the on-disk record segment
//! a shard process writes, and the deterministic merge that reassembles
//! segments into the single-process [`CampaignOutcome`].
//!
//! The contract is byte-identity: running `N` shards of the same seeded
//! world and merging their segments must produce a `campaign.json`
//! identical to one unsharded run. Three properties make that hold:
//!
//! 1. **Global ranks.** A shard visits only its stripe, but every
//!    rank-derived quantity (visit start time, per-profile seeds, the
//!    crawl-end timestamp and hence the probe time) comes from the
//!    *global* target list (see
//!    [`run_campaign_stripe`](crate::campaign::run_campaign_stripe)).
//! 2. **Shared fault seed.** The fault plan's seed is resolved once
//!    (`fault_seed.unwrap_or(derive(campaign_seed, "faults"))`) and
//!    pinned into every shard header, and fault coins key on URL and
//!    timestamp — so the fault schedule is a pure function of the work
//!    item, not of which shard performs it.
//! 3. **Pure probes.** An attestation probe result is a pure function
//!    of `(domain, probe_time)` under the shared plan, so the same
//!    domain probed by two shards yields identical records and the
//!    merge can dedup the union back into the sorted probe vector the
//!    unsharded run produces.
//!
//! A segment is a JSONL stream — header, per-site records, allow-list,
//! probe results, the shard's tally-derived metrics snapshot, stripped
//! trace spans — terminated by an FNV-1a checksum line over every
//! preceding byte (same constants as [`seed::fnv1a`]) plus a line
//! count, so truncation, bit-rot, and editing are all detected before
//! a merge can silently produce a wrong campaign.

use crate::metrics::tally_outcome;
use crate::record::{AttestationProbe, CampaignOutcome, SiteOutcome, CAMPAIGN_SCHEMA_VERSION};
use serde::{Content, Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Range;
use topics_net::clock::Timestamp;
use topics_net::domain::Domain;
use topics_net::seed;
use topics_obs::{MetricsRegistry, MetricsSnapshot, SpanRecord};

/// Current segment format version; bumped on incompatible change.
pub const SEGMENT_VERSION: u32 = 1;

/// Incremental FNV-1a (64-bit) — the same function as [`seed::fnv1a`],
/// but fed in chunks so a streaming segment writer can checksum as it
/// goes.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// Start a fresh digest (FNV-1a offset basis).
    pub fn new() -> Fnv {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }

    /// The digest over everything absorbed so far.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// Rank-stripe assignment: shard `k` of `n` owns a contiguous range of
/// site ranks, with the first `num_sites % n` stripes one rank longer
/// so the stripes partition `0..num_sites` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    shards: usize,
    num_sites: usize,
}

impl ShardPlan {
    /// Plan `shards` stripes over `num_sites` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, num_sites: usize) -> ShardPlan {
        assert!(shards >= 1, "a shard plan needs at least one shard");
        ShardPlan { shards, num_sites }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of site ranks covered.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// The rank stripe owned by shard `shard` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards`.
    pub fn stripe(&self, shard: usize) -> Range<usize> {
        assert!(shard < self.shards, "shard {shard} of {}", self.shards);
        let base = self.num_sites / self.shards;
        let extra = self.num_sites % self.shards;
        let start = shard * base + shard.min(extra);
        let len = base + usize::from(shard < extra);
        start..start + len
    }

    /// The shard owning rank `rank` — the inverse of [`Self::stripe`].
    ///
    /// # Panics
    ///
    /// Panics if `rank >= num_sites`.
    pub fn shard_of(&self, rank: usize) -> usize {
        assert!(rank < self.num_sites, "rank {rank} of {}", self.num_sites);
        let base = self.num_sites / self.shards;
        let extra = self.num_sites % self.shards;
        let wide = (base + 1) * extra;
        if rank < wide {
            rank / (base + 1)
        } else {
            extra + (rank - wide) / base
        }
    }
}

/// The per-shard derived seed recorded in the segment header: stable
/// under shard reordering (it depends only on the campaign seed and the
/// shard index) and distinct per shard. Shard-local randomness — and
/// the header self-check at merge time — keys off this token; the
/// *fault* seed is deliberately not derived per shard, because fault
/// schedules must match the unsharded run.
pub fn shard_token(campaign_seed: u64, shard: usize) -> u64 {
    seed::derive_idx(seed::derive(campaign_seed, "shard"), shard as u64)
}

/// The first line of a segment: everything the merge needs to check
/// that a set of segments belongs to the same sharded campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentHeader {
    /// Segment format version ([`SEGMENT_VERSION`]).
    pub version: u32,
    /// The campaign (= world) seed.
    pub seed: u64,
    /// This shard's index, 0-based.
    pub shard: usize,
    /// Total shard count.
    pub shards: usize,
    /// Global site count the plan was computed over.
    pub num_sites: usize,
    /// First rank of this shard's stripe.
    pub stripe_start: usize,
    /// One past the last rank of this shard's stripe.
    pub stripe_end: usize,
    /// [`shard_token`] for (`seed`, `shard`) — a header self-check.
    pub token: u64,
    /// Campaign start time.
    pub started: Timestamp,
    /// The fault profile, rendered via `Debug` (compared, not parsed).
    pub fault: String,
    /// The resolved fault seed shared by every shard.
    pub fault_seed: u64,
}

/// One line of a segment stream. Serialized as the payload's own
/// object with a discriminating `"kind"` entry first — written by hand
/// because the vendored serde stand-in has no tagged-enum support.
#[derive(Debug, Clone)]
enum SegmentLine {
    Header(SegmentHeader),
    Site(SiteOutcome),
    AllowList { domains: Vec<Domain> },
    Probe(AttestationProbe),
    Metrics(MetricsSnapshot),
    Span(SpanRecord),
    Checksum { fnv1a: u64, lines: u64 },
}

impl Serialize for SegmentLine {
    fn to_content(&self) -> Content {
        let (kind, payload) = match self {
            SegmentLine::Header(h) => ("header", h.to_content()),
            SegmentLine::Site(s) => ("site", s.to_content()),
            SegmentLine::AllowList { domains } => (
                "allow_list",
                Content::Map(vec![("domains".to_owned(), domains.to_content())]),
            ),
            SegmentLine::Probe(p) => ("probe", p.to_content()),
            SegmentLine::Metrics(m) => ("metrics", m.to_content()),
            SegmentLine::Span(s) => ("span", s.to_content()),
            SegmentLine::Checksum { fnv1a, lines } => (
                "checksum",
                Content::Map(vec![
                    ("fnv1a".to_owned(), fnv1a.to_content()),
                    ("lines".to_owned(), lines.to_content()),
                ]),
            ),
        };
        let mut entries = vec![("kind".to_owned(), Content::Str(kind.to_owned()))];
        entries.extend(
            payload
                .as_map_slice()
                .expect("segment payloads serialize as objects")
                .iter()
                .cloned(),
        );
        Content::Map(entries)
    }
}

impl Deserialize for SegmentLine {
    fn from_content(c: &Content) -> Result<Self, serde::Error> {
        let entries = c
            .as_map_slice()
            .ok_or_else(|| serde::Error::msg("expected a segment line object"))?;
        let kind = serde::map_get(entries, "kind")
            .and_then(Content::as_str)
            .ok_or_else(|| serde::Error::msg("segment line missing `kind`"))?;
        // Payload fields sit beside `kind`; derived impls look fields up
        // by name, so the extra entry is transparent to them.
        match kind {
            "header" => SegmentHeader::from_content(c).map(SegmentLine::Header),
            "site" => SiteOutcome::from_content(c).map(SegmentLine::Site),
            "allow_list" => serde::map_get(entries, "domains")
                .ok_or_else(|| serde::Error::missing_field("domains", "allow_list line"))
                .and_then(Vec::<Domain>::from_content)
                .map(|domains| SegmentLine::AllowList { domains }),
            "probe" => AttestationProbe::from_content(c).map(SegmentLine::Probe),
            "metrics" => MetricsSnapshot::from_content(c).map(SegmentLine::Metrics),
            "span" => SpanRecord::from_content(c).map(SegmentLine::Span),
            "checksum" => {
                let field = |name| {
                    serde::map_get(entries, name)
                        .and_then(Content::as_u64)
                        .ok_or_else(|| serde::Error::missing_field(name, "checksum line"))
                };
                Ok(SegmentLine::Checksum {
                    fnv1a: field("fnv1a")?,
                    lines: field("lines")?,
                })
            }
            other => Err(serde::Error::msg(format!(
                "unknown segment line kind `{other}`"
            ))),
        }
    }
}

/// A decoded record segment: one shard's complete output.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Identity and plan parameters.
    pub header: SegmentHeader,
    /// Site outcomes for this shard's stripe, in rank order.
    pub sites: Vec<SiteOutcome>,
    /// The allow-list snapshot (identical across shards).
    pub allow_list: Vec<Domain>,
    /// Probe results for the allow-list plus this stripe's parties.
    pub probes: Vec<AttestationProbe>,
    /// Tally-derived metrics snapshot of this shard's outcome.
    pub metrics: MetricsSnapshot,
    /// Stripped trace spans of the shard run (may be empty).
    pub trace: Vec<SpanRecord>,
}

/// Why a segment failed to decode. `Display` gives each variant a
/// stable name that doctor and `topics-lab merge` surface verbatim.
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentError {
    /// The stream ends without (or inside) the checksum trailer.
    Truncated,
    /// The checksum trailer disagrees with the absorbed bytes.
    ChecksumMismatch {
        /// Digest recorded in the trailer.
        expected: u64,
        /// Digest of the bytes actually present.
        actual: u64,
    },
    /// The trailer's line count disagrees with the lines present.
    LineCountMismatch {
        /// Count recorded in the trailer.
        expected: u64,
        /// Lines actually present.
        actual: u64,
    },
    /// A line is not valid segment JSON.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// Required section absent (header, metrics, …).
    MissingSection(&'static str),
    /// Bytes follow the checksum trailer.
    TrailingData,
    /// The header is internally inconsistent or from another version.
    HeaderInvalid(String),
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Truncated => write!(f, "truncated segment: no checksum trailer"),
            SegmentError::ChecksumMismatch { expected, actual } => write!(
                f,
                "segment checksum mismatch: trailer {expected:#018x}, content {actual:#018x}"
            ),
            SegmentError::LineCountMismatch { expected, actual } => write!(
                f,
                "segment line count mismatch: trailer says {expected}, found {actual}"
            ),
            SegmentError::Malformed { line } => write!(f, "malformed segment line {line}"),
            SegmentError::MissingSection(s) => write!(f, "segment missing {s}"),
            SegmentError::TrailingData => write!(f, "data after segment checksum"),
            SegmentError::HeaderInvalid(why) => write!(f, "segment header invalid: {why}"),
        }
    }
}

impl std::error::Error for SegmentError {}

impl Segment {
    /// Serialize to the JSONL stream, checksum trailer included.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let mut hash = Fnv::new();
        let mut lines = 0u64;
        let mut push = |out: &mut String, line: &SegmentLine| {
            let s = serde_json::to_string(line).expect("segment line serializes");
            hash.update(s.as_bytes());
            hash.update(b"\n");
            lines += 1;
            out.push_str(&s);
            out.push('\n');
        };
        push(&mut out, &SegmentLine::Header(self.header.clone()));
        for site in &self.sites {
            push(&mut out, &SegmentLine::Site(site.clone()));
        }
        push(
            &mut out,
            &SegmentLine::AllowList {
                domains: self.allow_list.clone(),
            },
        );
        for probe in &self.probes {
            push(&mut out, &SegmentLine::Probe(probe.clone()));
        }
        push(&mut out, &SegmentLine::Metrics(self.metrics.clone()));
        for span in &self.trace {
            push(&mut out, &SegmentLine::Span(span.clone()));
        }
        let trailer = SegmentLine::Checksum {
            fnv1a: hash.digest(),
            lines,
        };
        out.push_str(&serde_json::to_string(&trailer).expect("trailer serializes"));
        out.push('\n');
        out
    }

    /// Parse and verify a segment stream.
    pub fn decode(input: &str) -> Result<Segment, SegmentError> {
        let mut hash = Fnv::new();
        let mut count = 0u64;
        let mut trailer: Option<(u64, u64)> = None;
        let mut header: Option<SegmentHeader> = None;
        let mut sites = Vec::new();
        let mut allow_list: Option<Vec<Domain>> = None;
        let mut probes = Vec::new();
        let mut metrics: Option<MetricsSnapshot> = None;
        let mut trace = Vec::new();
        let chunks: Vec<&str> = input.split_inclusive('\n').collect();
        for (i, chunk) in chunks.iter().enumerate() {
            if trailer.is_some() {
                return Err(SegmentError::TrailingData);
            }
            let line = chunk.strip_suffix('\n').unwrap_or(chunk);
            let parsed: SegmentLine = match serde_json::from_str(line) {
                Ok(p) => p,
                // A cut mid-line is truncation; mid-stream garbage is not.
                Err(_) if i + 1 == chunks.len() => return Err(SegmentError::Truncated),
                Err(_) => return Err(SegmentError::Malformed { line: i + 1 }),
            };
            if let SegmentLine::Checksum { fnv1a, lines } = parsed {
                trailer = Some((fnv1a, lines));
                continue;
            }
            if !chunk.ends_with('\n') {
                return Err(SegmentError::Truncated);
            }
            hash.update(chunk.as_bytes());
            count += 1;
            match parsed {
                SegmentLine::Header(h) => header = Some(h),
                SegmentLine::Site(s) => sites.push(s),
                SegmentLine::AllowList { domains } => allow_list = Some(domains),
                SegmentLine::Probe(p) => probes.push(p),
                SegmentLine::Metrics(m) => metrics = Some(m),
                SegmentLine::Span(s) => trace.push(s),
                SegmentLine::Checksum { .. } => unreachable!("handled above"),
            }
        }
        let Some((fnv1a, lines)) = trailer else {
            return Err(SegmentError::Truncated);
        };
        if hash.digest() != fnv1a {
            return Err(SegmentError::ChecksumMismatch {
                expected: fnv1a,
                actual: hash.digest(),
            });
        }
        if count != lines {
            return Err(SegmentError::LineCountMismatch {
                expected: lines,
                actual: count,
            });
        }
        let header = header.ok_or(SegmentError::MissingSection("header"))?;
        if header.version != SEGMENT_VERSION {
            return Err(SegmentError::HeaderInvalid(format!(
                "unsupported segment version {} (this build reads {SEGMENT_VERSION})",
                header.version
            )));
        }
        let allow_list = allow_list.ok_or(SegmentError::MissingSection("allow-list"))?;
        let metrics = metrics.ok_or(SegmentError::MissingSection("metrics snapshot"))?;
        Ok(Segment {
            header,
            sites,
            allow_list,
            probes,
            metrics,
            trace,
        })
    }
}

/// Why a set of segments refused to merge. `Display` gives each
/// variant a stable name surfaced by `topics-lab merge` and doctor.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// Two headers disagree on a campaign-wide parameter.
    HeaderMismatch(String),
    /// The same shard index appears in more than one segment.
    DuplicateShard(usize),
    /// A shard index of the plan has no segment.
    MissingShard(usize),
    /// A header's stripe is not the one the plan assigns its shard.
    StripeMismatch(usize),
    /// A header's token is not [`shard_token`] of its shard.
    TokenMismatch(usize),
    /// The concatenated site ranks do not cover `0..num_sites`.
    CoverageGap(String),
    /// Segments carry different allow-list snapshots.
    AllowListMismatch,
    /// Two shards probed the same domain and disagreed.
    ProbeConflict(Domain),
    /// A segment's stored metrics snapshot does not reproduce from its
    /// own records.
    TallyMismatch(usize),
    /// No segments were given.
    Empty,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::HeaderMismatch(why) => write!(f, "segment header mismatch: {why}"),
            MergeError::DuplicateShard(k) => write!(f, "duplicate shard segment: shard {k}"),
            MergeError::MissingShard(k) => write!(f, "missing shard segment: shard {k}"),
            MergeError::StripeMismatch(k) => {
                write!(f, "segment stripe mismatch: shard {k} is not on plan")
            }
            MergeError::TokenMismatch(k) => {
                write!(
                    f,
                    "segment token mismatch: shard {k} seed derivation differs"
                )
            }
            MergeError::CoverageGap(why) => write!(f, "shard coverage gap: {why}"),
            MergeError::AllowListMismatch => {
                write!(f, "allow-list mismatch: segments snapshot different worlds")
            }
            MergeError::ProbeConflict(d) => {
                write!(f, "conflicting probe results for {d}")
            }
            MergeError::TallyMismatch(k) => write!(
                f,
                "per-shard tally mismatch: shard {k} metrics do not reproduce from its records"
            ),
            MergeError::Empty => write!(f, "no segments to merge"),
        }
    }
}

impl std::error::Error for MergeError {}

/// The tally-only metrics snapshot of an outcome — what a shard stores
/// in its segment, recomputed at merge time as an integrity check.
pub fn tally_snapshot(outcome: &CampaignOutcome) -> MetricsSnapshot {
    let registry = MetricsRegistry::new();
    tally_outcome(outcome, &registry);
    registry.snapshot()
}

/// Reassemble segments into the unsharded [`CampaignOutcome`].
///
/// Verifies header agreement, exact shard coverage (each index of the
/// plan exactly once, stripes on plan, ranks gapless), allow-list
/// equality, probe consistency across shards, and that every segment's
/// stored metrics snapshot reproduces from its own records. Segments
/// may be given in any order.
pub fn merge_segments(segments: &[Segment]) -> Result<CampaignOutcome, MergeError> {
    let first = segments.first().ok_or(MergeError::Empty)?;
    let h0 = &first.header;
    for s in segments {
        let h = &s.header;
        let same = h.seed == h0.seed
            && h.shards == h0.shards
            && h.num_sites == h0.num_sites
            && h.started == h0.started
            && h.fault == h0.fault
            && h.fault_seed == h0.fault_seed;
        if !same {
            return Err(MergeError::HeaderMismatch(format!(
                "shard {} disagrees with shard {} on campaign parameters",
                h.shard, h0.shard
            )));
        }
    }
    let plan = ShardPlan::new(h0.shards, h0.num_sites);
    let mut by_shard: Vec<Option<&Segment>> = vec![None; plan.shards()];
    for s in segments {
        let k = s.header.shard;
        if k >= plan.shards() {
            return Err(MergeError::HeaderMismatch(format!(
                "shard index {k} out of range for {} shards",
                plan.shards()
            )));
        }
        if by_shard[k].replace(s).is_some() {
            return Err(MergeError::DuplicateShard(k));
        }
    }
    let mut ordered: Vec<&Segment> = Vec::with_capacity(plan.shards());
    for (k, slot) in by_shard.iter().enumerate() {
        ordered.push(slot.ok_or(MergeError::MissingShard(k))?);
    }

    let mut sites: Vec<SiteOutcome> = Vec::with_capacity(plan.num_sites());
    let mut probe_map: BTreeMap<Domain, AttestationProbe> = BTreeMap::new();
    for (k, s) in ordered.iter().enumerate() {
        let stripe = plan.stripe(k);
        if s.header.stripe_start != stripe.start || s.header.stripe_end != stripe.end {
            return Err(MergeError::StripeMismatch(k));
        }
        if s.header.token != shard_token(h0.seed, k) {
            return Err(MergeError::TokenMismatch(k));
        }
        if s.allow_list != first.allow_list {
            return Err(MergeError::AllowListMismatch);
        }
        if s.sites.len() != stripe.len() {
            return Err(MergeError::CoverageGap(format!(
                "shard {k} holds {} sites for a stripe of {}",
                s.sites.len(),
                stripe.len()
            )));
        }
        for (site, rank) in s.sites.iter().zip(stripe.clone()) {
            if site.rank != rank {
                return Err(MergeError::CoverageGap(format!(
                    "shard {k} records rank {} where the plan expects {rank}",
                    site.rank
                )));
            }
        }
        // The stored snapshot must reproduce from the records alongside
        // it; anything else means the segment was assembled from
        // mismatched runs.
        let shard_outcome = CampaignOutcome {
            schema_version: CAMPAIGN_SCHEMA_VERSION,
            sites: s.sites.clone(),
            allow_list: s.allow_list.clone(),
            attestation_probes: s.probes.clone(),
            started: s.header.started,
        };
        if tally_snapshot(&shard_outcome) != s.metrics {
            return Err(MergeError::TallyMismatch(k));
        }
        sites.extend(s.sites.iter().cloned());
        for p in &s.probes {
            match probe_map.get(&p.domain) {
                Some(existing) if existing != p => {
                    return Err(MergeError::ProbeConflict(p.domain.clone()))
                }
                Some(_) => {}
                None => {
                    probe_map.insert(p.domain.clone(), p.clone());
                }
            }
        }
    }

    // BTreeMap iteration is domain-sorted — exactly the order the
    // unsharded run's BTreeSet probe collection produces.
    Ok(CampaignOutcome {
        schema_version: CAMPAIGN_SCHEMA_VERSION,
        sites,
        allow_list: first.allow_list.clone(),
        attestation_probes: probe_map.into_values().collect(),
        started: h0.started,
    })
}

/// Segment-at-a-time variant of [`merge_segments`] for consumers that
/// can stream sites as they arrive — the columnar writer pushes each
/// accepted stripe straight into its column vectors, so the merge never
/// holds more than one decoded segment plus the growing columns (the
/// row-struct path holds every segment *and* the full outcome at once).
///
/// Segments must arrive in shard order — exactly what iterating the
/// canonical `shard-K-of-N.seg` file names in sorted order yields.
/// Every per-segment check of [`merge_segments`] runs in
/// [`StreamingMerge::accept`]; [`StreamingMerge::finish`] performs the
/// whole-campaign ones and releases the merged probe set in the sorted
/// order the unsharded run produces.
#[derive(Debug, Default)]
pub struct StreamingMerge {
    first: Option<(SegmentHeader, Vec<Domain>)>,
    next_shard: usize,
    probe_map: BTreeMap<Domain, AttestationProbe>,
}

impl StreamingMerge {
    /// A merge expecting shard 0 first.
    pub fn new() -> StreamingMerge {
        StreamingMerge::default()
    }

    /// Validate one segment and hand back its sites (moved, in rank
    /// order) for the caller to consume.
    pub fn accept(&mut self, segment: Segment) -> Result<Vec<SiteOutcome>, MergeError> {
        let h = &segment.header;
        match &self.first {
            None => {
                if h.shard != 0 {
                    return Err(MergeError::MissingShard(0));
                }
                self.first = Some((h.clone(), segment.allow_list.clone()));
            }
            Some((h0, allow)) => {
                let same = h.seed == h0.seed
                    && h.shards == h0.shards
                    && h.num_sites == h0.num_sites
                    && h.started == h0.started
                    && h.fault == h0.fault
                    && h.fault_seed == h0.fault_seed;
                if !same {
                    return Err(MergeError::HeaderMismatch(format!(
                        "shard {} disagrees with shard {} on campaign parameters",
                        h.shard, h0.shard
                    )));
                }
                if segment.allow_list != *allow {
                    return Err(MergeError::AllowListMismatch);
                }
            }
        }
        let (h0, _) = self.first.as_ref().expect("set above");
        let plan = ShardPlan::new(h0.shards, h0.num_sites);
        let k = h.shard;
        if k >= plan.shards() {
            return Err(MergeError::HeaderMismatch(format!(
                "shard index {k} out of range for {} shards",
                plan.shards()
            )));
        }
        if k < self.next_shard {
            return Err(MergeError::DuplicateShard(k));
        }
        if k > self.next_shard {
            return Err(MergeError::MissingShard(self.next_shard));
        }
        let stripe = plan.stripe(k);
        if h.stripe_start != stripe.start || h.stripe_end != stripe.end {
            return Err(MergeError::StripeMismatch(k));
        }
        if h.token != shard_token(h0.seed, k) {
            return Err(MergeError::TokenMismatch(k));
        }
        if segment.sites.len() != stripe.len() {
            return Err(MergeError::CoverageGap(format!(
                "shard {k} holds {} sites for a stripe of {}",
                segment.sites.len(),
                stripe.len()
            )));
        }
        for (site, rank) in segment.sites.iter().zip(stripe.clone()) {
            if site.rank != rank {
                return Err(MergeError::CoverageGap(format!(
                    "shard {k} records rank {} where the plan expects {rank}",
                    site.rank
                )));
            }
        }
        // Tally check without cloning the sites: build the shard's
        // outcome around the moved vector, verify, then hand it on.
        let shard_outcome = CampaignOutcome {
            schema_version: CAMPAIGN_SCHEMA_VERSION,
            sites: segment.sites,
            allow_list: segment.allow_list,
            attestation_probes: segment.probes,
            started: h.started,
        };
        if tally_snapshot(&shard_outcome) != segment.metrics {
            return Err(MergeError::TallyMismatch(k));
        }
        for p in shard_outcome.attestation_probes {
            match self.probe_map.get(&p.domain) {
                Some(existing) if *existing != p => {
                    return Err(MergeError::ProbeConflict(p.domain));
                }
                Some(_) => {}
                None => {
                    self.probe_map.insert(p.domain.clone(), p);
                }
            }
        }
        self.next_shard += 1;
        Ok(shard_outcome.sites)
    }

    /// Verify every shard arrived and release the campaign-wide pieces:
    /// `(allow list, probes in sorted-domain order, start time)`.
    #[allow(clippy::type_complexity)]
    pub fn finish(self) -> Result<(Vec<Domain>, Vec<AttestationProbe>, Timestamp), MergeError> {
        let (h0, allow) = self.first.ok_or(MergeError::Empty)?;
        if self.next_shard != h0.shards {
            return Err(MergeError::MissingShard(self.next_shard));
        }
        Ok((allow, self.probe_map.into_values().collect(), h0.started))
    }
}

/// Slice an unsharded outcome into the segments its sharded run would
/// have produced (traces empty): each shard keeps its stripe's sites
/// and the probes for the allow-list plus the parties that stripe
/// encountered. `merge_segments(split_outcome(o, ..)) == o` — the
/// roundtrip the `shard_merge` bench exercises.
pub fn split_outcome(
    outcome: &CampaignOutcome,
    plan: ShardPlan,
    seed: u64,
    fault: &str,
    fault_seed: u64,
) -> Vec<Segment> {
    assert_eq!(plan.num_sites(), outcome.sites.len(), "plan covers outcome");
    let probe_index: BTreeMap<&Domain, &AttestationProbe> = outcome
        .attestation_probes
        .iter()
        .map(|p| (&p.domain, p))
        .collect();
    (0..plan.shards())
        .map(|k| {
            let stripe = plan.stripe(k);
            let sites: Vec<SiteOutcome> = outcome.sites[stripe.clone()].to_vec();
            let mut wanted: BTreeSet<&Domain> = outcome.allow_list.iter().collect();
            for s in &sites {
                for v in s.before.iter().chain(s.after.iter()) {
                    wanted.extend(v.party_domains.iter());
                    wanted.extend(v.topics_calls.iter().map(|c| &c.caller_site));
                }
            }
            let probes: Vec<AttestationProbe> = wanted
                .iter()
                .filter_map(|d| probe_index.get(d).map(|p| (*p).clone()))
                .collect();
            let shard_outcome = CampaignOutcome {
                schema_version: CAMPAIGN_SCHEMA_VERSION,
                sites,
                allow_list: outcome.allow_list.clone(),
                attestation_probes: probes,
                started: outcome.started,
            };
            Segment {
                header: SegmentHeader {
                    version: SEGMENT_VERSION,
                    seed,
                    shard: k,
                    shards: plan.shards(),
                    num_sites: plan.num_sites(),
                    stripe_start: stripe.start,
                    stripe_end: stripe.end,
                    token: shard_token(seed, k),
                    started: outcome.started,
                    fault: fault.to_owned(),
                    fault_seed,
                },
                metrics: tally_snapshot(&shard_outcome),
                sites: shard_outcome.sites,
                allow_list: shard_outcome.allow_list,
                probes: shard_outcome.attestation_probes,
                trace: Vec::new(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use topics_webgen::{World, WorldConfig};

    fn campaign(seed: u64, n: usize) -> (World, CampaignOutcome) {
        let world = World::generate(WorldConfig::scaled(seed, n));
        let config = CampaignConfig {
            threads: 2,
            ..Default::default()
        };
        let outcome = run_campaign(&world, &config);
        (world, outcome)
    }

    fn split(outcome: &CampaignOutcome, seed: u64, shards: usize) -> Vec<Segment> {
        split_outcome(
            outcome,
            ShardPlan::new(shards, outcome.sites.len()),
            seed,
            "FaultProfile::off()",
            seed::derive(seed, "faults"),
        )
    }

    #[test]
    fn streaming_merge_matches_batch_merge() {
        let (world, outcome) = campaign(57, 40);
        let segments = split(&outcome, world.seed(), 4);
        let batch = merge_segments(&segments).unwrap();

        let mut sm = StreamingMerge::new();
        let mut sites: Vec<SiteOutcome> = Vec::new();
        for seg in segments {
            sites.extend(sm.accept(seg).unwrap());
        }
        let (allow_list, probes, started) = sm.finish().unwrap();
        let streamed = CampaignOutcome {
            schema_version: CAMPAIGN_SCHEMA_VERSION,
            sites,
            allow_list,
            attestation_probes: probes,
            started,
        };
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
    }

    #[test]
    fn streaming_merge_demands_shard_order() {
        let (world, outcome) = campaign(58, 12);
        let segments = split(&outcome, world.seed(), 3);

        // Starting anywhere but shard 0 is a missing-shard error.
        let mut sm = StreamingMerge::new();
        assert_eq!(
            sm.accept(segments[1].clone()).unwrap_err(),
            MergeError::MissingShard(0)
        );

        // Skipping a shard names the one that was expected.
        let mut sm = StreamingMerge::new();
        sm.accept(segments[0].clone()).unwrap();
        assert_eq!(
            sm.accept(segments[2].clone()).unwrap_err(),
            MergeError::MissingShard(1)
        );

        // Replays are duplicates.
        let mut sm = StreamingMerge::new();
        sm.accept(segments[0].clone()).unwrap();
        assert_eq!(
            sm.accept(segments[0].clone()).unwrap_err(),
            MergeError::DuplicateShard(0)
        );

        // Finishing early names the missing shard; an empty merge is Empty.
        let mut sm = StreamingMerge::new();
        sm.accept(segments[0].clone()).unwrap();
        assert_eq!(sm.finish().unwrap_err(), MergeError::MissingShard(1));
        assert_eq!(
            StreamingMerge::new().finish().unwrap_err(),
            MergeError::Empty
        );
    }

    #[test]
    fn incremental_fnv_matches_one_shot() {
        for input in [&b""[..], b"a", b"hello segment", b"\n\n\n"] {
            let mut f = Fnv::new();
            f.update(input);
            assert_eq!(f.digest(), seed::fnv1a(input));
        }
        // Chunked feeding gives the same digest as one shot.
        let mut f = Fnv::new();
        f.update(b"hello ");
        f.update(b"segment");
        assert_eq!(f.digest(), seed::fnv1a(b"hello segment"));
    }

    #[test]
    fn stripes_partition_the_rank_space() {
        let plan = ShardPlan::new(4, 10);
        let stripes: Vec<_> = (0..4).map(|k| plan.stripe(k)).collect();
        assert_eq!(stripes, vec![0..3, 3..6, 6..8, 8..10]);
        for rank in 0..10 {
            assert_eq!(rank >= 3, plan.shard_of(rank) >= 1);
            assert!(stripes[plan.shard_of(rank)].contains(&rank));
        }
    }

    #[test]
    fn more_shards_than_sites_leaves_empty_stripes() {
        let plan = ShardPlan::new(5, 3);
        let lens: Vec<usize> = (0..5).map(|k| plan.stripe(k).len()).collect();
        assert_eq!(lens, vec![1, 1, 1, 0, 0]);
        for rank in 0..3 {
            assert_eq!(plan.shard_of(rank), rank);
        }
    }

    #[test]
    fn tokens_are_distinct_and_stable() {
        let a: Vec<u64> = (0..8).map(|k| shard_token(42, k)).collect();
        let b: Vec<u64> = (0..8).rev().map(|k| shard_token(42, k)).collect();
        assert_eq!(a, b.into_iter().rev().collect::<Vec<_>>());
        let distinct: BTreeSet<u64> = a.iter().copied().collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn segment_roundtrips_through_encode_decode() {
        let (world, outcome) = campaign(91, 60);
        let segments = split(&outcome, world.seed(), 3);
        for seg in &segments {
            let decoded = Segment::decode(&seg.encode()).expect("decodes");
            assert_eq!(decoded.header, seg.header);
            assert_eq!(decoded.probes, seg.probes);
            assert_eq!(decoded.metrics, seg.metrics);
            assert_eq!(
                serde_json::to_string(&decoded.sites).unwrap(),
                serde_json::to_string(&seg.sites).unwrap()
            );
        }
    }

    #[test]
    fn merge_of_split_is_the_identity() {
        let (world, outcome) = campaign(93, 80);
        for shards in [1usize, 2, 3, 7] {
            let merged = merge_segments(&split(&outcome, world.seed(), shards)).expect("merges");
            assert_eq!(
                serde_json::to_string(&merged).unwrap(),
                serde_json::to_string(&outcome).unwrap(),
                "{shards}-way split/merge changed the outcome"
            );
        }
        // Segment order must not matter.
        let mut segs = split(&outcome, world.seed(), 3);
        segs.reverse();
        let merged = merge_segments(&segs).expect("merges reversed");
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&outcome).unwrap()
        );
    }

    #[test]
    fn decode_names_truncation_corruption_and_trailing_data() {
        let (world, outcome) = campaign(95, 40);
        let seg = &split(&outcome, world.seed(), 2)[0];
        let encoded = seg.encode();

        // Whole-line truncation: drop the checksum trailer.
        let without_trailer = &encoded[..encoded[..encoded.len() - 1].rfind('\n').unwrap() + 1];
        assert_eq!(
            Segment::decode(without_trailer).unwrap_err(),
            SegmentError::Truncated
        );
        // Mid-line truncation.
        assert_eq!(
            Segment::decode(&encoded[..encoded.len() / 2]).unwrap_err(),
            SegmentError::Truncated
        );
        // A flipped digit in a content line keeps JSON valid but breaks
        // the digest.
        let corrupted = encoded.replacen("\"rank\":0", "\"rank\":9", 1);
        assert_ne!(corrupted, encoded, "fixture found a rank-0 site line");
        assert!(matches!(
            Segment::decode(&corrupted),
            Err(SegmentError::ChecksumMismatch { .. })
        ));
        // Bytes after the trailer.
        let mut trailing = encoded.clone();
        trailing.push_str("{}\n");
        assert_eq!(
            Segment::decode(&trailing).unwrap_err(),
            SegmentError::TrailingData
        );
        // Garbage mid-stream is malformed, not truncated.
        let mut garbled_lines: Vec<&str> = encoded.lines().collect();
        garbled_lines.insert(1, "not json");
        let garbled = garbled_lines.join("\n") + "\n";
        assert_eq!(
            Segment::decode(&garbled).unwrap_err(),
            SegmentError::Malformed { line: 2 }
        );
    }

    #[test]
    fn merge_names_duplicate_missing_and_mismatched_shards() {
        let (world, outcome) = campaign(97, 60);
        let segs = split(&outcome, world.seed(), 3);

        let dup = vec![segs[0].clone(), segs[1].clone(), segs[1].clone()];
        assert_eq!(
            merge_segments(&dup).unwrap_err(),
            MergeError::DuplicateShard(1)
        );

        let missing = vec![segs[0].clone(), segs[2].clone()];
        assert_eq!(
            merge_segments(&missing).unwrap_err(),
            MergeError::MissingShard(1)
        );

        let mut wrong_stripe = segs.clone();
        wrong_stripe[1].header.stripe_start += 1;
        assert_eq!(
            merge_segments(&wrong_stripe).unwrap_err(),
            MergeError::StripeMismatch(1)
        );

        let mut wrong_token = segs.clone();
        wrong_token[2].header.token ^= 1;
        assert_eq!(
            merge_segments(&wrong_token).unwrap_err(),
            MergeError::TokenMismatch(2)
        );

        let mut wrong_seed = segs.clone();
        wrong_seed[0].header.seed ^= 1;
        assert!(matches!(
            merge_segments(&wrong_seed),
            Err(MergeError::HeaderMismatch(_))
        ));

        let mut stale_tally = segs.clone();
        stale_tally[0].metrics = MetricsSnapshot::default();
        assert_eq!(
            merge_segments(&stale_tally).unwrap_err(),
            MergeError::TallyMismatch(0)
        );

        assert_eq!(merge_segments(&[]).unwrap_err(), MergeError::Empty);
    }
}
