//! Shared support for the benchmark harness.
//!
//! Every bench regenerates one table or figure of the paper. Since a
//! crawl is the expensive part, each bench binary builds the world and
//! runs the campaign **once** (cached in a `OnceLock`) and then
//! benchmarks the analysis it exercises; the regenerated table/figure is
//! printed around the Criterion run so `cargo bench` output can be
//! compared against the paper side by side.
//!
//! Scale is controlled by two environment variables:
//!
//! * `TOPICS_BENCH_SITES` — number of ranked sites (default 6,000);
//! * `TOPICS_BENCH_FULL=1` — force the paper's full 50,000.

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use std::time::Instant;
use topics_core::crawler::record::CampaignOutcome;
use topics_core::webgen::World;
use topics_core::{Lab, LabConfig};
use topics_obs::{MetricsSnapshot, Obs};

/// The live gauge holding the attestation-probe phase wall time.
pub const PROBE_WALL_GAUGE: &str = "phase_wall_us{phase=\"attestation-probe\"}";

/// The default benchmark scale (sites).
pub const DEFAULT_SITES: usize = 6_000;
/// The campaign seed shared by every bench.
pub const BENCH_SEED: u64 = 2_024;

/// Benchmark scale from the environment.
pub fn bench_sites() -> usize {
    if std::env::var("TOPICS_BENCH_FULL").as_deref() == Ok("1") {
        return 50_000;
    }
    std::env::var("TOPICS_BENCH_SITES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SITES)
}

/// A world plus the campaign crawled on it.
pub struct SharedCampaign {
    /// The synthetic web.
    pub lab: Lab,
    /// The crawl result.
    pub outcome: CampaignOutcome,
    /// Metrics snapshot of the setup crawl.
    pub metrics: MetricsSnapshot,
}

impl SharedCampaign {
    /// The world (convenience accessor).
    pub fn world(&self) -> &World {
        &self.lab.world
    }
}

/// Machine-readable summary of the setup crawl, written next to the
/// bench invocation (or to `TOPICS_BENCH_SUMMARY`) so CI can track
/// crawl throughput across runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSummary {
    /// Ranked sites crawled.
    pub sites: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Wall-clock milliseconds the setup crawl took.
    pub crawl_wall_ms: u64,
    /// Successfully visited sites (|D_BA|).
    pub visited: usize,
    /// Banner-accepted sites (|D_AA|).
    pub accepted: usize,
    /// Wall-clock microseconds of the attestation-probe phase
    /// ([`PROBE_WALL_GAUGE`]); 0 in summaries from older builds.
    #[serde(default)]
    pub probe_wall_us: u64,
}

/// Read a previously written [`BenchSummary`] (e.g. the committed
/// baseline); `None` when missing or unparsable.
pub fn read_summary(path: &std::path::Path) -> Option<BenchSummary> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Where the bench summary is written: `TOPICS_BENCH_SUMMARY`, or
/// `BENCH_summary.json` in the working directory.
pub fn summary_path() -> std::path::PathBuf {
    std::env::var("TOPICS_BENCH_SUMMARY")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH_summary.json"))
}

/// The per-process shared campaign (built on first use).
pub fn shared() -> &'static SharedCampaign {
    static SHARED: OnceLock<SharedCampaign> = OnceLock::new();
    SHARED.get_or_init(|| {
        let sites = bench_sites();
        let obs = Obs::with_stderr_echo();
        obs.events.info(
            "bench-setup",
            vec![
                ("sites".into(), sites.into()),
                ("seed".into(), BENCH_SEED.into()),
            ],
        );
        let lab = Lab::new(LabConfig::quick(BENCH_SEED, sites));
        let crawl_started = Instant::now();
        let run = lab.run_observed(&obs);
        let summary = BenchSummary {
            sites,
            seed: BENCH_SEED,
            crawl_wall_ms: crawl_started.elapsed().as_millis() as u64,
            visited: run.visited_count(),
            accepted: run.accepted_count(),
            probe_wall_us: run.metrics.gauge(PROBE_WALL_GAUGE).max(0) as u64,
        };
        obs.events.info(
            "bench-crawl-done",
            vec![
                ("visited".into(), summary.visited.into()),
                ("accepted".into(), summary.accepted.into()),
                ("crawl_wall_ms".into(), summary.crawl_wall_ms.into()),
            ],
        );
        let path = summary_path();
        let json = serde_json::to_string(&summary).expect("summary serialises");
        if let Err(e) = std::fs::write(&path, json) {
            obs.events.error(
                "bench-summary-write-failed",
                vec![
                    ("path".into(), path.display().to_string().into()),
                    ("error".into(), e.to_string().into()),
                ],
            );
        }
        SharedCampaign {
            lab,
            metrics: run.metrics,
            outcome: run.outcome,
        }
    })
}

/// Print a banner separating the regenerated artefact from Criterion's
/// timing output.
pub fn banner(title: &str) {
    eprintln!("\n================================================================");
    eprintln!("{title}");
    eprintln!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_sites_defaults() {
        // Do not set the env vars here (tests run in parallel); just
        // check the default path when unset.
        if std::env::var("TOPICS_BENCH_SITES").is_err()
            && std::env::var("TOPICS_BENCH_FULL").is_err()
        {
            assert_eq!(bench_sites(), DEFAULT_SITES);
        }
    }
}
