//! Shared support for the benchmark harness.
//!
//! Every bench regenerates one table or figure of the paper. Since a
//! crawl is the expensive part, each bench binary builds the world and
//! runs the campaign **once** (cached in a `OnceLock`) and then
//! benchmarks the analysis it exercises; the regenerated table/figure is
//! printed around the Criterion run so `cargo bench` output can be
//! compared against the paper side by side.
//!
//! Scale is controlled by two environment variables:
//!
//! * `TOPICS_BENCH_SITES` — number of ranked sites (default 6,000);
//! * `TOPICS_BENCH_FULL=1` — force the paper's full 50,000.

use std::sync::OnceLock;
use topics_core::crawler::record::CampaignOutcome;
use topics_core::webgen::World;
use topics_core::{Lab, LabConfig};

/// The default benchmark scale (sites).
pub const DEFAULT_SITES: usize = 6_000;
/// The campaign seed shared by every bench.
pub const BENCH_SEED: u64 = 2_024;

/// Benchmark scale from the environment.
pub fn bench_sites() -> usize {
    if std::env::var("TOPICS_BENCH_FULL").as_deref() == Ok("1") {
        return 50_000;
    }
    std::env::var("TOPICS_BENCH_SITES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SITES)
}

/// A world plus the campaign crawled on it.
pub struct SharedCampaign {
    /// The synthetic web.
    pub lab: Lab,
    /// The crawl result.
    pub outcome: CampaignOutcome,
}

impl SharedCampaign {
    /// The world (convenience accessor).
    pub fn world(&self) -> &World {
        &self.lab.world
    }
}

/// The per-process shared campaign (built on first use).
pub fn shared() -> &'static SharedCampaign {
    static SHARED: OnceLock<SharedCampaign> = OnceLock::new();
    SHARED.get_or_init(|| {
        let sites = bench_sites();
        eprintln!("[bench setup] generating {sites}-site world (seed {BENCH_SEED}) and crawling …");
        let lab = Lab::new(LabConfig::quick(BENCH_SEED, sites));
        let outcome = lab.run();
        eprintln!(
            "[bench setup] crawl done: {} visited, {} accepted",
            outcome.visited_count(),
            outcome.accepted_count()
        );
        SharedCampaign { lab, outcome }
    })
}

/// Print a banner separating the regenerated artefact from Criterion's
/// timing output.
pub fn banner(title: &str) {
    eprintln!("\n================================================================");
    eprintln!("{title}");
    eprintln!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_sites_defaults() {
        // Do not set the env vars here (tests run in parallel); just
        // check the default path when unset.
        if std::env::var("TOPICS_BENCH_SITES").is_err()
            && std::env::var("TOPICS_BENCH_FULL").is_err()
        {
            assert_eq!(bench_sites(), DEFAULT_SITES);
        }
    }
}
