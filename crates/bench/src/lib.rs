//! Shared support for the benchmark harness.
//!
//! Every bench regenerates one table or figure of the paper. Since a
//! crawl is the expensive part, each bench binary builds the world and
//! runs the campaign **once** (cached in a `OnceLock`) and then
//! benchmarks the analysis it exercises; the regenerated table/figure is
//! printed around the Criterion run so `cargo bench` output can be
//! compared against the paper side by side.
//!
//! Scale is controlled by two environment variables:
//!
//! * `TOPICS_BENCH_SITES` — number of ranked sites (default 6,000);
//! * `TOPICS_BENCH_FULL=1` — force the paper's full 50,000.

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use std::time::Instant;
use topics_core::crawler::record::CampaignOutcome;
use topics_core::webgen::World;
use topics_core::{Lab, LabConfig};
use topics_obs::{MetricsSnapshot, Obs};

/// The live gauge holding the attestation-probe phase wall time.
pub const PROBE_WALL_GAUGE: &str = "phase_wall_us{phase=\"attestation-probe\"}";

/// The default benchmark scale (sites).
pub const DEFAULT_SITES: usize = 6_000;
/// The campaign seed shared by every bench.
pub const BENCH_SEED: u64 = 2_024;

/// Benchmark scale from the environment.
pub fn bench_sites() -> usize {
    if std::env::var("TOPICS_BENCH_FULL").as_deref() == Ok("1") {
        return 50_000;
    }
    std::env::var("TOPICS_BENCH_SITES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SITES)
}

/// A world plus the campaign crawled on it.
pub struct SharedCampaign {
    /// The synthetic web.
    pub lab: Lab,
    /// The crawl result.
    pub outcome: CampaignOutcome,
    /// Metrics snapshot of the setup crawl.
    pub metrics: MetricsSnapshot,
}

impl SharedCampaign {
    /// The world (convenience accessor).
    pub fn world(&self) -> &World {
        &self.lab.world
    }
}

/// Machine-readable summary of one perf-smoke run. `BENCH_summary.json`
/// holds an append-only array of these — one entry per recorded PR —
/// chained by [`chain_digest`] so CI can detect rewritten history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSummary {
    /// Ranked sites crawled.
    pub sites: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Wall-clock milliseconds the setup crawl took.
    pub crawl_wall_ms: u64,
    /// Successfully visited sites (|D_BA|).
    pub visited: usize,
    /// Banner-accepted sites (|D_AA|).
    pub accepted: usize,
    /// Wall-clock microseconds of the attestation-probe phase
    /// ([`PROBE_WALL_GAUGE`]); 0 in summaries from older builds.
    #[serde(default)]
    pub probe_wall_us: u64,
    /// Wall-clock milliseconds of the full evaluation + report render;
    /// 0 in entries from older builds.
    #[serde(default)]
    pub report_wall_ms: u64,
    /// Heap bytes allocated across the campaign run (counting
    /// allocator); 0 in entries from older builds.
    #[serde(default)]
    pub alloc_bytes: u64,
    /// OS peak RSS (`VmHWM`) of the recording process; 0 in entries
    /// from older builds or off Linux.
    #[serde(default)]
    pub peak_rss_bytes: u64,
    /// Wall-clock milliseconds to decode a 4-way segment split, merge
    /// it, and re-serialise the merged campaign; 0 in entries from
    /// older builds. Skipped from the encoding when zero so legacy
    /// entries keep their recorded [`chain_digest`].
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub shard_merge_wall_ms: u64,
    /// Wall-clock milliseconds to encode the campaign into the columnar
    /// store (`ColumnarCampaign::from_outcome`); 0 in entries from
    /// builds without the column store. Skipped from the encoding when
    /// zero so legacy entries keep their recorded [`chain_digest`].
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub encode_wall_ms: u64,
    /// Size in bytes of the encoded columnar store; 0 in entries from
    /// builds without the column store.
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub store_bytes: u64,
    /// Wall-clock milliseconds of a full column scan
    /// (`topics_analysis::colscan::scan`) over the decoded store — the
    /// zero-deserialization query path; 0 in entries from builds
    /// without the column store.
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub query_wall_ms: u64,
    /// Wall-clock milliseconds for 64 sequential `/api/report` fetches
    /// against an in-process `topics-lab serve` holding the store
    /// resident (steady-state query latency of the live service); 0 in
    /// entries from builds without the server. Skipped from the
    /// encoding when zero so legacy entries keep their recorded
    /// [`chain_digest`].
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub serve_query_wall_ms: u64,
    /// Wall-clock milliseconds of one `simulate` engine run (arena
    /// advancement + k-anonymity + re-identification attack) at the
    /// smoke scale (`sites × 10` users, 10 epochs); 0 in entries from
    /// builds without the population engine. Skipped from the encoding
    /// when zero so legacy entries keep their recorded [`chain_digest`].
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub simulate_wall_ms: u64,
    /// OS peak RSS (`VmHWM`) read right after the simulate run — an
    /// upper bound on the engine's resident footprint (the crawl runs
    /// later in the same process); 0 in entries from builds without the
    /// population engine or off Linux. Skipped from the encoding when
    /// zero so legacy entries keep their recorded [`chain_digest`].
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub simulate_peak_rss: u64,
    /// Hash-chain value: [`chain_digest`] of the previous entry's chain
    /// and this entry with `chain` zeroed. 0 only in legacy entries.
    #[serde(default)]
    pub chain: u64,
}

/// `skip_serializing_if` predicate keeping zero-valued late-addition
/// columns out of the canonical encoding (chain stability).
fn u64_is_zero(v: &u64) -> bool {
    *v == 0
}

/// The chain value an entry must carry given its predecessor's chain.
///
/// FNV-1a over the predecessor chain (little-endian) followed by the
/// entry's canonical JSON with `chain` zeroed. Serde field order is
/// declaration order, so the encoding is deterministic.
pub fn chain_digest(prev_chain: u64, entry: &BenchSummary) -> u64 {
    let mut canonical = entry.clone();
    canonical.chain = 0;
    let json = serde_json::to_string(&canonical).expect("summary serialises");
    let mut buf = prev_chain.to_le_bytes().to_vec();
    buf.extend_from_slice(json.as_bytes());
    topics_net::seed::fnv1a(&buf)
}

/// Read the perf history. A legacy file holding a single summary object
/// is promoted to a one-entry history; `None` when missing or
/// unparsable.
pub fn read_history(path: &std::path::Path) -> Option<Vec<BenchSummary>> {
    let text = std::fs::read_to_string(path).ok()?;
    if let Ok(entries) = serde_json::from_str::<Vec<BenchSummary>>(&text) {
        return Some(entries);
    }
    serde_json::from_str::<BenchSummary>(&text)
        .ok()
        .map(|s| vec![s])
}

/// Verify the hash chain of a history. Entry 0 may carry `chain == 0`
/// (recorded before chaining existed); every other entry must equal
/// [`chain_digest`] of its predecessor. Returns the first violation.
pub fn verify_history(entries: &[BenchSummary]) -> Result<(), String> {
    let mut prev = 0u64;
    for (i, entry) in entries.iter().enumerate() {
        if !(i == 0 && entry.chain == 0) {
            let want = chain_digest(prev, entry);
            if entry.chain != want {
                return Err(format!(
                    "history entry {i} chain mismatch: recorded {}, expected {want} \
                     (history rewritten or truncated?)",
                    entry.chain
                ));
            }
        }
        prev = entry.chain;
    }
    Ok(())
}

/// Append an entry to the history at `path`, computing its chain value.
/// The existing history (if any) must verify first — appending never
/// repairs a broken chain silently.
pub fn append_entry(path: &std::path::Path, mut entry: BenchSummary) -> Result<(), String> {
    let mut entries = read_history(path).unwrap_or_default();
    verify_history(&entries)?;
    let prev = entries.last().map(|e| e.chain).unwrap_or(0);
    entry.chain = chain_digest(prev, &entry);
    entries.push(entry);
    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&serde_json::to_string(e).expect("summary serialises"));
    }
    json.push_str("\n]\n");
    std::fs::write(path, json).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// True when `new` extends `old` without touching existing entries —
/// the append-only contract CI enforces between the committed history
/// and the working-tree one.
pub fn is_append_only(old: &[BenchSummary], new: &[BenchSummary]) -> bool {
    new.len() >= old.len() && new[..old.len()] == *old
}

/// Regression gates: >30% slower or >25% more memory than the baseline
/// entry fails. Zero baselines (older recordings) and scale mismatches
/// skip the corresponding gate. Returns every violation, not just the
/// first.
pub fn check_regression(baseline: &BenchSummary, current: &BenchSummary) -> Vec<String> {
    let mut violations = Vec::new();
    if baseline.sites != current.sites {
        return violations;
    }
    // (label, baseline value, current value, limit numerator/denominator)
    let gates: [(&str, u64, u64, u64, u64); 11] = [
        (
            "probe_wall_us",
            baseline.probe_wall_us,
            current.probe_wall_us,
            13,
            10,
        ),
        (
            "report_wall_ms",
            baseline.report_wall_ms,
            current.report_wall_ms,
            13,
            10,
        ),
        (
            "alloc_bytes",
            baseline.alloc_bytes,
            current.alloc_bytes,
            5,
            4,
        ),
        (
            "peak_rss_bytes",
            baseline.peak_rss_bytes,
            current.peak_rss_bytes,
            5,
            4,
        ),
        (
            "shard_merge_wall_ms",
            baseline.shard_merge_wall_ms,
            current.shard_merge_wall_ms,
            13,
            10,
        ),
        (
            "encode_wall_ms",
            baseline.encode_wall_ms,
            current.encode_wall_ms,
            13,
            10,
        ),
        (
            "store_bytes",
            baseline.store_bytes,
            current.store_bytes,
            5,
            4,
        ),
        (
            "query_wall_ms",
            baseline.query_wall_ms,
            current.query_wall_ms,
            13,
            10,
        ),
        (
            "serve_query_wall_ms",
            baseline.serve_query_wall_ms,
            current.serve_query_wall_ms,
            13,
            10,
        ),
        (
            "simulate_wall_ms",
            baseline.simulate_wall_ms,
            current.simulate_wall_ms,
            13,
            10,
        ),
        (
            "simulate_peak_rss",
            baseline.simulate_peak_rss,
            current.simulate_peak_rss,
            5,
            4,
        ),
    ];
    for (label, base, cur, num, den) in gates {
        if base == 0 {
            continue;
        }
        let limit = base.saturating_mul(num) / den;
        if cur > limit {
            violations.push(format!(
                "{label} regressed: {cur} > {limit} ({num}/{den} × baseline {base})"
            ));
        }
    }
    violations
}

/// Read the newest entry of a history file (the comparison baseline);
/// `None` when missing, unparsable, or empty.
pub fn read_summary(path: &std::path::Path) -> Option<BenchSummary> {
    read_history(path)?.pop()
}

/// Where the bench summary is written: `TOPICS_BENCH_SUMMARY`, or
/// `BENCH_summary.json` in the working directory.
pub fn summary_path() -> std::path::PathBuf {
    std::env::var("TOPICS_BENCH_SUMMARY")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH_summary.json"))
}

/// The per-process shared campaign (built on first use).
pub fn shared() -> &'static SharedCampaign {
    static SHARED: OnceLock<SharedCampaign> = OnceLock::new();
    SHARED.get_or_init(|| {
        let sites = bench_sites();
        let obs = Obs::with_stderr_echo();
        obs.events.info(
            "bench-setup",
            vec![
                ("sites".into(), sites.into()),
                ("seed".into(), BENCH_SEED.into()),
            ],
        );
        let lab = Lab::new(LabConfig::quick(BENCH_SEED, sites));
        let crawl_started = Instant::now();
        let run = lab.run_observed(&obs);
        // The setup crawl only logs its timing. The perf-regression
        // ledger (BENCH_summary.json) is append-only and owned by the
        // perf_smoke binary's record mode — a cargo-bench warm-up run
        // must never clobber recorded history.
        obs.events.info(
            "bench-crawl-done",
            vec![
                ("visited".into(), run.visited_count().into()),
                ("accepted".into(), run.accepted_count().into()),
                (
                    "crawl_wall_ms".into(),
                    (crawl_started.elapsed().as_millis() as u64).into(),
                ),
            ],
        );
        SharedCampaign {
            lab,
            metrics: run.metrics,
            outcome: run.outcome,
        }
    })
}

/// Print a banner separating the regenerated artefact from Criterion's
/// timing output.
pub fn banner(title: &str) {
    eprintln!("\n================================================================");
    eprintln!("{title}");
    eprintln!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(sites: usize, probe: u64, alloc: u64) -> BenchSummary {
        BenchSummary {
            sites,
            seed: BENCH_SEED,
            crawl_wall_ms: 100,
            visited: sites * 4 / 5,
            accepted: sites / 4,
            probe_wall_us: probe,
            report_wall_ms: 20,
            alloc_bytes: alloc,
            peak_rss_bytes: 1 << 26,
            shard_merge_wall_ms: 15,
            encode_wall_ms: 12,
            store_bytes: 1 << 22,
            query_wall_ms: 4,
            serve_query_wall_ms: 6,
            simulate_wall_ms: 800,
            simulate_peak_rss: 1 << 27,
            chain: 0,
        }
    }

    #[test]
    fn history_appends_and_verifies_chain() {
        let dir = std::env::temp_dir().join(format!("bench-ledger-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.json");
        let _ = std::fs::remove_file(&path);

        append_entry(&path, entry(2_000, 7_000, 1 << 24)).unwrap();
        append_entry(&path, entry(2_000, 7_100, 1 << 24)).unwrap();
        let history = read_history(&path).unwrap();
        assert_eq!(history.len(), 2);
        assert!(verify_history(&history).is_ok());
        // Every appended entry carries a non-zero chain value.
        assert!(history.iter().all(|e| e.chain != 0));
        // read_summary returns the newest entry.
        assert_eq!(read_summary(&path).unwrap(), history[1]);

        // Tampering with a recorded value breaks the chain.
        let mut forged = history.clone();
        forged[0].probe_wall_us = 1;
        let err = verify_history(&forged).unwrap_err();
        assert!(err.contains("entry 0"), "{err}");

        // Dropping an entry from the middle breaks the chain too.
        let truncated = vec![history[1].clone()];
        assert!(verify_history(&truncated).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_single_object_history_is_promoted() {
        let dir = std::env::temp_dir().join(format!("bench-legacy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.json");
        // A pre-ledger file: one bare object, no chain, no memory columns.
        std::fs::write(
            &path,
            r#"{"sites":2000,"seed":2024,"crawl_wall_ms":352,"visited":1737,"accepted":587,"probe_wall_us":7455}"#,
        )
        .unwrap();
        let history = read_history(&path).unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].chain, 0, "legacy entries have no chain");
        assert_eq!(history[0].report_wall_ms, 0, "missing columns default");
        // A zero chain is tolerated at index 0 only.
        assert!(verify_history(&history).is_ok());
        // Appending on top of a legacy entry produces a verifiable chain.
        append_entry(&path, entry(2_000, 7_500, 1 << 24)).unwrap();
        let extended = read_history(&path).unwrap();
        assert_eq!(extended.len(), 2);
        assert!(verify_history(&extended).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_only_contract_detects_rewrites() {
        let a = entry(2_000, 7_000, 1 << 24);
        let b = entry(2_000, 7_100, 1 << 24);
        let old = vec![a.clone()];
        assert!(is_append_only(&old, &[a.clone(), b.clone()]));
        assert!(is_append_only(&old, &old.clone()));
        assert!(!is_append_only(&old, &[]), "truncation is a rewrite");
        assert!(
            !is_append_only(&old, &[b.clone(), a.clone()]),
            "editing an existing entry is a rewrite"
        );
    }

    #[test]
    fn regression_gates_fire_at_the_documented_thresholds() {
        let base = entry(2_000, 10_000, 1_000_000);
        // At the limit: 1.30× time and 1.25× memory pass.
        let mut at = base.clone();
        at.probe_wall_us = 13_000;
        at.alloc_bytes = 1_250_000;
        assert!(check_regression(&base, &at).is_empty());
        // One past the limit fails, naming the metric.
        let mut over = at.clone();
        over.probe_wall_us = 13_001;
        let v = check_regression(&base, &over);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("probe_wall_us"), "{v:?}");
        // Memory gate is tighter (25%).
        let mut mem = base.clone();
        mem.alloc_bytes = 2_000_000;
        mem.peak_rss_bytes = base.peak_rss_bytes * 2;
        let v = check_regression(&base, &mem);
        assert_eq!(v.len(), 2, "{v:?}");
        // Zero baselines (older recordings) skip their gate.
        let mut legacy = base.clone();
        legacy.alloc_bytes = 0;
        legacy.peak_rss_bytes = 0;
        legacy.report_wall_ms = 0;
        assert!(check_regression(&legacy, &mem).is_empty());
        // Scale mismatch skips everything.
        let mut other_scale = over.clone();
        other_scale.sites = 6_000;
        assert!(check_regression(&base, &other_scale).is_empty());
    }

    #[test]
    fn columnar_store_gates_fire() {
        let base = entry(2_000, 10_000, 1_000_000);
        // encode/query are time gates (13/10); store_bytes is a size
        // gate on the tighter 5/4 ratio.
        let mut over = base.clone();
        over.encode_wall_ms = base.encode_wall_ms * 13 / 10 + 1;
        over.query_wall_ms = base.query_wall_ms * 13 / 10 + 1;
        over.serve_query_wall_ms = base.serve_query_wall_ms * 13 / 10 + 1;
        over.store_bytes = base.store_bytes * 5 / 4 + 1;
        let v = check_regression(&base, &over);
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().any(|m| m.contains("encode_wall_ms")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("store_bytes")), "{v:?}");
        assert!(
            v.iter()
                .any(|m| m.contains("query_wall_ms") && !m.contains("serve_query_wall_ms")),
            "{v:?}"
        );
        assert!(v.iter().any(|m| m.contains("serve_query_wall_ms")), "{v:?}");
        // Pre-columnar baselines (zero columns) skip the new gates.
        let mut legacy = base.clone();
        legacy.encode_wall_ms = 0;
        legacy.store_bytes = 0;
        legacy.query_wall_ms = 0;
        legacy.serve_query_wall_ms = 0;
        assert!(check_regression(&legacy, &over)
            .iter()
            .all(|m| !m.contains("encode") && !m.contains("store") && !m.contains("query")));
    }

    #[test]
    fn simulate_gates_fire() {
        let base = entry(2_000, 10_000, 1_000_000);
        // simulate_wall_ms is a time gate (13/10); simulate_peak_rss a
        // memory gate on the tighter 5/4 ratio.
        let mut over = base.clone();
        over.simulate_wall_ms = base.simulate_wall_ms * 13 / 10 + 1;
        over.simulate_peak_rss = base.simulate_peak_rss * 5 / 4 + 1;
        let v = check_regression(&base, &over);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("simulate_wall_ms")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("simulate_peak_rss")), "{v:?}");
        // At the limit passes.
        let mut at = base.clone();
        at.simulate_wall_ms = base.simulate_wall_ms * 13 / 10;
        at.simulate_peak_rss = base.simulate_peak_rss * 5 / 4;
        assert!(check_regression(&base, &at).is_empty());
        // Pre-engine baselines (zero columns) skip the new gates.
        let mut legacy = base.clone();
        legacy.simulate_wall_ms = 0;
        legacy.simulate_peak_rss = 0;
        assert!(check_regression(&legacy, &over)
            .iter()
            .all(|m| !m.contains("simulate")));
        // Zero-valued simulate columns stay out of the encoding so
        // legacy chain digests keep verifying.
        let json = serde_json::to_string(&legacy).unwrap();
        assert!(!json.contains("simulate_wall_ms"), "{json}");
        assert!(!json.contains("simulate_peak_rss"), "{json}");
        let json = serde_json::to_string(&base).unwrap();
        assert!(json.contains("simulate_wall_ms"), "{json}");
    }

    #[test]
    fn zero_columnar_columns_stay_out_of_the_canonical_encoding() {
        // A legacy entry re-serialised must not gain the new columns —
        // otherwise its recorded chain digest would stop verifying.
        let mut legacy = entry(2_000, 7_000, 1 << 24);
        legacy.encode_wall_ms = 0;
        legacy.store_bytes = 0;
        legacy.query_wall_ms = 0;
        legacy.serve_query_wall_ms = 0;
        let json = serde_json::to_string(&legacy).unwrap();
        assert!(!json.contains("encode_wall_ms"), "{json}");
        assert!(!json.contains("store_bytes"), "{json}");
        assert!(!json.contains("query_wall_ms"), "{json}");
        assert!(!json.contains("serve_query_wall_ms"), "{json}");
        let populated = entry(2_000, 7_000, 1 << 24);
        let json = serde_json::to_string(&populated).unwrap();
        assert!(json.contains("encode_wall_ms"), "{json}");
    }

    #[test]
    fn bench_sites_defaults() {
        // Do not set the env vars here (tests run in parallel); just
        // check the default path when unset.
        if std::env::var("TOPICS_BENCH_SITES").is_err()
            && std::env::var("TOPICS_BENCH_FULL").is_err()
        {
            assert_eq!(bench_sites(), DEFAULT_SITES);
        }
    }
}
