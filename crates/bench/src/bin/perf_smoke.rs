//! CI perf smoke for the attestation-probe phase.
//!
//! Runs one quick campaign at `TOPICS_BENCH_SITES` (CI uses 2,000) and
//! compares the live `phase_wall_us{phase="attestation-probe"}` gauge
//! against the committed `BENCH_summary.json` baseline. Exits non-zero
//! when the probe phase takes more than 1.5× the recorded baseline; a
//! missing baseline or a scale mismatch skips the check (exit 0) so the
//! smoke never blocks unrelated work.
//!
//! Re-record the baseline with `TOPICS_PERF_RECORD=1` (writes the
//! summary file instead of comparing).

use std::time::Instant;
use topics_bench::{
    bench_sites, read_summary, summary_path, BenchSummary, BENCH_SEED, PROBE_WALL_GAUGE,
};
use topics_core::{Lab, LabConfig};

/// Regression threshold: fail when current > baseline × 3/2.
const NUM: u64 = 3;
const DEN: u64 = 2;

/// Identical campaign runs per invocation; the minimum probe wall time
/// is compared (single samples on busy 1-core runners vary ~2×).
const RUNS: usize = 3;

fn main() {
    let sites = bench_sites();
    let path = summary_path();
    let record = std::env::var("TOPICS_PERF_RECORD").as_deref() == Ok("1");

    // Wall-clock is noisy on shared runners; the best of a few identical
    // runs is a stable estimate of what the phase actually costs.
    let lab = Lab::new(LabConfig::quick(BENCH_SEED, sites));
    let started = Instant::now();
    let mut run = lab.run();
    let crawl_wall_ms = started.elapsed().as_millis() as u64;
    let mut probe_wall_us = run.metrics.gauge(PROBE_WALL_GAUGE).max(0) as u64;
    for _ in 1..RUNS {
        run = lab.run();
        probe_wall_us = probe_wall_us.min(run.metrics.gauge(PROBE_WALL_GAUGE).max(0) as u64);
    }
    println!(
        "perf-smoke: sites={sites} visited={} probe_wall_us={probe_wall_us} (best of {RUNS}) crawl_wall_ms={crawl_wall_ms}",
        run.visited_count(),
    );

    if record {
        let summary = BenchSummary {
            sites,
            seed: BENCH_SEED,
            crawl_wall_ms,
            visited: run.visited_count(),
            accepted: run.accepted_count(),
            probe_wall_us,
        };
        let json = serde_json::to_string(&summary).expect("summary serialises");
        std::fs::write(&path, json).expect("baseline written");
        println!("perf-smoke: baseline recorded at {}", path.display());
        return;
    }

    let Some(baseline) = read_summary(&path) else {
        println!(
            "perf-smoke: no baseline at {} — skipping comparison",
            path.display()
        );
        return;
    };
    if baseline.sites != sites || baseline.probe_wall_us == 0 {
        println!(
            "perf-smoke: baseline scale mismatch (baseline sites={}, probe_wall_us={}) — skipping",
            baseline.sites, baseline.probe_wall_us
        );
        return;
    }
    let limit = baseline.probe_wall_us.saturating_mul(NUM) / DEN;
    if probe_wall_us > limit {
        eprintln!(
            "perf-smoke FAIL: probe phase {probe_wall_us} µs > {limit} µs \
             ({NUM}/{DEN} × baseline {} µs)",
            baseline.probe_wall_us
        );
        std::process::exit(1);
    }
    println!(
        "perf-smoke OK: probe phase {probe_wall_us} µs ≤ {limit} µs \
         ({NUM}/{DEN} × baseline {} µs)",
        baseline.probe_wall_us
    );
}
