//! CI perf smoke and regression ledger.
//!
//! Runs a few identical campaigns at `TOPICS_BENCH_SITES` (CI uses
//! 2,000) under the counting allocator and measures four things per
//! run, keeping the minimum of each (single samples on busy 1-core
//! runners vary ~2×):
//!
//! * `crawl_wall_ms`   — the campaign wall clock;
//! * `probe_wall_us`   — the `phase_wall_us{phase="attestation-probe"}` gauge;
//! * `report_wall_ms`  — full evaluation + report render;
//! * `alloc_bytes`     — heap allocated across the run (counting allocator);
//! * `shard_merge_wall_ms` — decode a 4-way segment split of the final
//!   run, merge it, and re-serialise the merged campaign;
//! * `encode_wall_ms` / `store_bytes` / `query_wall_ms` — columnar
//!   store encode time, encoded size, and a full column scan over a
//!   freshly decoded store;
//! * `serve_query_wall_ms` — 64 sequential `/api/report` fetches
//!   against an in-process `topics-lab serve` holding the store
//!   resident (the live service's steady-state query latency);
//! * `simulate_wall_ms` / `simulate_peak_rss` — one population-engine
//!   run (arena advancement + k-anonymity + re-identification) at
//!   `sites × 10` users over 10 epochs, measured **first** so the RSS
//!   reading bounds the engine rather than the later crawl;
//!
//! plus the process peak RSS (`VmHWM`) once at the end. The current
//! numbers are compared against the **last entry** of the append-only
//! history in `BENCH_summary.json`: more than 30% slower on a time
//! column or 25% heavier on a memory column exits non-zero. A missing history,
//! scale mismatch, or zero baseline column skips that check so the
//! smoke never blocks unrelated work.
//!
//! Modes:
//!
//! * default                 — measure and compare against the history;
//! * `TOPICS_PERF_RECORD=1`  — measure and append a chained entry;
//! * `verify-history` (arg)  — no campaign: verify the hash chain, and
//!   when `TOPICS_PERF_PREV` names a file, that the current history is
//!   an append-only extension of it.
//!
//! `TOPICS_PERF_RUNS` overrides the number of runs (default 3).

use std::time::Instant;
use topics_bench::{
    bench_sites, check_regression, is_append_only, read_history, summary_path, verify_history,
    BenchSummary, BENCH_SEED, PROBE_WALL_GAUGE,
};
use topics_core::analysis::colscan;
use topics_core::crawler::columnar::ColumnarCampaign;
use topics_core::crawler::{merge_segments, split_outcome, Segment, ShardPlan};
use topics_core::net::seed;
use topics_core::{evaluate, Lab, LabConfig};
use topics_obs::{alloc, CountingAlloc};

/// Every heap byte of the process goes through the counting allocator;
/// counting is switched on at the top of `main`, so the setup noise
/// before it stays out of the ledger.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn verify_history_mode() {
    let path = summary_path();
    let Some(history) = read_history(&path) else {
        println!(
            "perf-smoke: no history at {} — nothing to verify",
            path.display()
        );
        return;
    };
    if let Err(e) = verify_history(&history) {
        eprintln!("perf-smoke FAIL: {} — {e}", path.display());
        std::process::exit(1);
    }
    if let Ok(prev_path) = std::env::var("TOPICS_PERF_PREV") {
        let prev = read_history(std::path::Path::new(&prev_path)).unwrap_or_default();
        if !is_append_only(&prev, &history) {
            eprintln!(
                "perf-smoke FAIL: {} is not an append-only extension of {prev_path} \
                 (recorded entries were edited or dropped)",
                path.display()
            );
            std::process::exit(1);
        }
    }
    println!(
        "perf-smoke OK: history at {} verifies ({} entries)",
        path.display(),
        history.len()
    );
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("verify-history") {
        verify_history_mode();
        return;
    }

    let sites = bench_sites();
    let path = summary_path();
    let record = std::env::var("TOPICS_PERF_RECORD").as_deref() == Ok("1");
    let runs: usize = std::env::var("TOPICS_PERF_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3);

    alloc::set_enabled(true);

    // Population engine first: at this point the process has allocated
    // almost nothing, so VmHWM right after the run is an honest upper
    // bound on the simulate footprint (the crawl below would otherwise
    // dominate the peak). Scale tracks the crawl scale: sites × 10
    // users over 10 epochs keeps CI at ~20k users.
    let sim_cfg = topics_core::baseline::SimConfig {
        sites: sites.max(500),
        sample: 2_000,
        ..topics_core::baseline::SimConfig::new(BENCH_SEED, sites * 10, 10)
    };
    let sim_universe = topics_core::baseline::simulate::build_universe(&sim_cfg);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut simulate_wall_ms = u64::MAX;
    for _ in 0..runs {
        let started = Instant::now();
        let arena = topics_core::baseline::simulate::build_arena(&sim_cfg, &sim_universe, threads)
            .expect("smoke config validates");
        let kanon = topics_core::baseline::simulate::kanon_curve(&arena, threads);
        let (reident, _) = topics_core::baseline::simulate::reident_curve(
            &sim_cfg,
            &sim_universe,
            &arena,
            threads,
        );
        simulate_wall_ms = simulate_wall_ms.min(started.elapsed().as_millis() as u64);
        std::hint::black_box((kanon, reident));
    }
    let simulate_peak_rss = alloc::peak_rss_bytes().unwrap_or(0);

    let lab = Lab::new(LabConfig::quick(BENCH_SEED, sites));

    let mut crawl_wall_ms = u64::MAX;
    let mut probe_wall_us = u64::MAX;
    let mut report_wall_ms = u64::MAX;
    let mut alloc_bytes = u64::MAX;
    let mut run = None;
    for _ in 0..runs {
        let alloc_before = alloc::global_stats().alloc_bytes;
        let started = Instant::now();
        let r = lab.run();
        crawl_wall_ms = crawl_wall_ms.min(started.elapsed().as_millis() as u64);
        probe_wall_us = probe_wall_us.min(r.metrics.gauge(PROBE_WALL_GAUGE).max(0) as u64);
        let report_started = Instant::now();
        let eval = evaluate(&r.outcome);
        let report = eval.render_report();
        report_wall_ms = report_wall_ms.min(report_started.elapsed().as_millis() as u64);
        std::hint::black_box(report);
        alloc_bytes = alloc_bytes.min(alloc::global_stats().alloc_bytes - alloc_before);
        run = Some(r);
    }
    let run = run.expect("at least one run");
    let peak_rss_bytes = alloc::peak_rss_bytes().unwrap_or(0);

    // Shard-merge roundtrip: encode a 4-way split of the final run once,
    // then time decode + merge + re-serialise (the `merge` subcommand's
    // hot path, minus disk I/O).
    let fault_seed = lab
        .campaign
        .fault_seed
        .unwrap_or_else(|| seed::derive(lab.world.seed(), "faults"));
    let encoded: Vec<String> = split_outcome(
        &run.outcome,
        ShardPlan::new(4, run.outcome.sites.len()),
        lab.world.seed(),
        &format!("{:?}", lab.campaign.fault),
        fault_seed,
    )
    .iter()
    .map(Segment::encode)
    .collect();
    let mut shard_merge_wall_ms = u64::MAX;
    for _ in 0..runs {
        let started = Instant::now();
        let segments: Vec<Segment> = encoded
            .iter()
            .map(|e| Segment::decode(e).expect("own segments decode"))
            .collect();
        let merged = merge_segments(&segments).expect("own segments merge");
        std::hint::black_box(serde_json::to_string(&merged).expect("campaign serialises"));
        shard_merge_wall_ms = shard_merge_wall_ms.min(started.elapsed().as_millis() as u64);
    }

    // Columnar store roundtrip: time the struct-of-arrays encode, record
    // the store size, and time a full column scan over a freshly decoded
    // store (the zero-deserialization query path `report` uses when the
    // bundle was written with `--store columnar`).
    let mut encode_wall_ms = u64::MAX;
    let mut store_bytes = 0u64;
    let mut query_wall_ms = u64::MAX;
    for _ in 0..runs {
        let started = Instant::now();
        let col = ColumnarCampaign::from_outcome(&run.outcome);
        encode_wall_ms = encode_wall_ms.min(started.elapsed().as_millis() as u64);
        store_bytes = col.bytes().len() as u64;
        let decoded = ColumnarCampaign::decode(col.bytes().to_vec()).expect("own store decodes");
        let started = Instant::now();
        let index = colscan::scan(&decoded).expect("own store scans");
        query_wall_ms = query_wall_ms.min(started.elapsed().as_millis() as u64);
        std::hint::black_box(index);
    }

    // Live-serving latency: persist the store once, bind an in-process
    // server over it (load + scan + pre-render happen in bind), and
    // time 64 sequential /api/report fetches per run — the same request
    // path a scraping client sees, minus network distance.
    let serve_dir = std::env::temp_dir().join(format!("topics-perf-serve-{}", std::process::id()));
    std::fs::create_dir_all(&serve_dir).expect("temp dir");
    let col_path = serve_dir.join("campaign.col");
    std::fs::write(
        &col_path,
        ColumnarCampaign::from_outcome(&run.outcome).bytes(),
    )
    .expect("store persists");
    let config = topics_core::ServeConfig::new(col_path);
    let server = topics_core::Server::bind(&config, std::sync::Arc::new(topics_obs::Obs::new()))
        .expect("server binds");
    let addr = server.local_addr().to_string();
    let mut serve_query_wall_ms = u64::MAX;
    std::thread::scope(|scope| {
        scope.spawn(|| server.run());
        for _ in 0..runs {
            let started = Instant::now();
            for _ in 0..64 {
                let resp =
                    topics_core::http_fetch(&addr, "GET", "/api/report").expect("report fetches");
                assert_eq!(resp.status, 200);
                std::hint::black_box(resp.body);
            }
            serve_query_wall_ms = serve_query_wall_ms.min(started.elapsed().as_millis() as u64);
        }
        server.handle().stop();
    });
    std::fs::remove_dir_all(&serve_dir).expect("temp dir cleanup");

    println!(
        "perf-smoke: sites={sites} visited={} (best of {runs}) crawl_wall_ms={crawl_wall_ms} \
         probe_wall_us={probe_wall_us} report_wall_ms={report_wall_ms} \
         alloc_bytes={alloc_bytes} peak_rss_bytes={peak_rss_bytes} \
         shard_merge_wall_ms={shard_merge_wall_ms} encode_wall_ms={encode_wall_ms} \
         store_bytes={store_bytes} query_wall_ms={query_wall_ms} \
         serve_query_wall_ms={serve_query_wall_ms} simulate_wall_ms={simulate_wall_ms} \
         simulate_peak_rss={simulate_peak_rss}",
        run.visited_count(),
    );

    let current = BenchSummary {
        sites,
        seed: BENCH_SEED,
        crawl_wall_ms,
        visited: run.visited_count(),
        accepted: run.accepted_count(),
        probe_wall_us,
        report_wall_ms,
        alloc_bytes,
        peak_rss_bytes,
        shard_merge_wall_ms,
        encode_wall_ms,
        store_bytes,
        query_wall_ms,
        serve_query_wall_ms,
        simulate_wall_ms,
        simulate_peak_rss,
        chain: 0, // assigned by append_entry
    };

    if record {
        if let Err(e) = topics_bench::append_entry(&path, current) {
            eprintln!("perf-smoke FAIL: recording entry: {e}");
            std::process::exit(1);
        }
        println!("perf-smoke: entry appended to {}", path.display());
        return;
    }

    let Some(history) = read_history(&path) else {
        println!(
            "perf-smoke: no history at {} — skipping comparison",
            path.display()
        );
        return;
    };
    if let Err(e) = verify_history(&history) {
        eprintln!("perf-smoke FAIL: {} — {e}", path.display());
        std::process::exit(1);
    }
    let Some(baseline) = history.last() else {
        println!("perf-smoke: empty history — skipping comparison");
        return;
    };
    if baseline.sites != sites {
        println!(
            "perf-smoke: baseline scale mismatch (baseline sites={}, current sites={sites}) — skipping",
            baseline.sites
        );
        return;
    }
    let violations = check_regression(baseline, &current);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("perf-smoke FAIL: {v}");
        }
        std::process::exit(1);
    }
    println!(
        "perf-smoke OK: within 13/10 × time and 5/4 × memory of baseline entry {} of {}",
        history.len(),
        path.display()
    );
}
