//! Ablation — the 5% random-topic noise (plausible deniability).
//!
//! §2.1: "to add some plausible deniability, 5% of the offered topics
//! are replaced by a random topic". This ablation sweeps the noise
//! probability and measures its effect on the re-identification attack
//! of refs [17, 23]: more noise, weaker linkage.

use criterion::Criterion;
use std::hint::black_box;
use std::sync::Arc;
use topics_bench::{banner, BENCH_SEED};
use topics_core::baseline::{
    collect_profiles, generate_population_with_noise, match_profiles, SiteUniverse,
};
use topics_core::net::domain::Domain;
use topics_core::taxonomy::Classifier;

fn accuracy_at(noise: f64, users_n: usize) -> f64 {
    let classifier = Arc::new(Classifier::new(BENCH_SEED).with_unclassifiable_rate(0.0));
    let universe = SiteUniverse::generate(BENCH_SEED, 1_200, &classifier);
    let mut users =
        generate_population_with_noise(BENCH_SEED, users_n, &universe, classifier, 8, 30, noise);
    let ctx_a: Vec<usize> = (0..universe.len()).step_by(5).collect();
    let ctx_b: Vec<usize> = (2..universe.len()).step_by(7).collect();
    let a = collect_profiles(
        &mut users,
        &universe,
        &ctx_a,
        &Domain::parse("adv-a.com").unwrap(),
        4..8,
    );
    let b = collect_profiles(
        &mut users,
        &universe,
        &ctx_b,
        &Domain::parse("adv-b.com").unwrap(),
        4..8,
    );
    match_profiles(&a, &b).accuracy()
}

fn main() {
    banner("Ablation — noise probability vs re-identification accuracy");
    eprintln!("{:>8} {:>22}", "noise", "top-1 linkage accuracy");
    for noise in [0.0, 0.05, 0.15, 0.30, 0.60] {
        let acc = accuracy_at(noise, 60);
        let marker = if (noise - 0.05).abs() < 1e-9 {
            "  ← Chrome default"
        } else {
            ""
        };
        eprintln!("{:>7.0}% {:>21.1}%{marker}", noise * 100.0, acc * 100.0);
    }
    eprintln!("shape: accuracy decreases monotonically as noise rises\n");

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("noise/reident_experiment_n20", |b| {
        b.iter(|| black_box(accuracy_at(0.05, 20)))
    });
    c.final_summary();
}
