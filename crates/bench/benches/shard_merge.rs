//! Shard segment codec and merge micro-benchmarks.
//!
//! A sharded campaign pays three costs the single-process run does not:
//! encoding each shard's segment, decoding every segment back, and the
//! deterministic merge that must reproduce `campaign.json` byte for
//! byte. The split here is synthesised from the shared campaign via
//! `split_outcome`, so the segments carry exactly the payload a real
//! `topics-lab shard` run would write (traces excluded — trace merge is
//! covered by the obs unit suite).

use criterion::Criterion;
use std::hint::black_box;
use topics_bench::{banner, shared};
use topics_core::crawler::{merge_segments, split_outcome, Segment, ShardPlan};
use topics_core::net::seed;

fn main() {
    let sc = shared();
    let outcome = &sc.outcome;
    let world_seed = sc.world().seed();
    let fault = format!("{:?}", sc.lab.campaign.fault);
    let fault_seed = sc
        .lab
        .campaign
        .fault_seed
        .unwrap_or_else(|| seed::derive(world_seed, "faults"));

    banner(&format!(
        "Shard merge — {} sites, {} probes",
        outcome.sites.len(),
        outcome.attestation_probes.len()
    ));

    let mut c = Criterion::default().configure_from_args();
    for shards in [2usize, 4, 8] {
        let plan = ShardPlan::new(shards, outcome.sites.len());
        let segments = split_outcome(outcome, plan, world_seed, &fault, fault_seed);
        let encoded: Vec<String> = segments.iter().map(Segment::encode).collect();

        c.bench_function(&format!("shard/encode-{shards}"), |b| {
            b.iter(|| {
                black_box(
                    segments
                        .iter()
                        .map(Segment::encode)
                        .collect::<Vec<String>>(),
                )
            })
        });
        c.bench_function(&format!("shard/decode-{shards}"), |b| {
            b.iter(|| {
                black_box(
                    encoded
                        .iter()
                        .map(|e| Segment::decode(e).expect("own segments decode"))
                        .collect::<Vec<Segment>>(),
                )
            })
        });
        c.bench_function(&format!("shard/merge-{shards}"), |b| {
            b.iter(|| black_box(merge_segments(&segments).expect("own segments merge")))
        });
    }
    c.final_summary();
}
