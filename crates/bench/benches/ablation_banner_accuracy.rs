//! Ablation — Priv-Accept detection accuracy vs D_AA size.
//!
//! The paper's After-Accept dataset exists only where the consent
//! banner could be recognised and clicked (92–95% keyword accuracy on
//! five languages). This ablation sweeps the share of banners using
//! quirky, keyword-evading phrasing and measures how the D_AA
//! population — and with it every After-Accept finding — shrinks.

use criterion::Criterion;
use std::hint::black_box;
use topics_bench::{banner, BENCH_SEED};
use topics_core::crawler::campaign::run_campaign;
use topics_core::webgen::{World, WorldConfig};
use topics_core::LabConfig;

fn campaign_with_quirky(rate: f64, sites: usize) -> (usize, usize) {
    let mut wc = WorldConfig::scaled(BENCH_SEED, sites);
    wc.site_model.quirky_phrase_rate = rate;
    let world = World::generate(wc);
    let outcome = run_campaign(&world, &LabConfig::quick(BENCH_SEED, sites).campaign);
    (outcome.visited_count(), outcome.accepted_count())
}

fn main() {
    banner("Ablation — banner phrasing vs Priv-Accept acceptance");
    eprintln!(
        "{:>14} {:>10} {:>10} {:>12}",
        "quirky rate", "visited", "accepted", "D_AA share"
    );
    for rate in [0.0, 0.06, 0.15, 0.30, 0.60] {
        let (visited, accepted) = campaign_with_quirky(rate, 3_000);
        eprintln!(
            "{:>13.0}% {visited:>10} {accepted:>10} {:>11.1}%",
            rate * 100.0,
            accepted as f64 / visited.max(1) as f64 * 100.0
        );
    }
    eprintln!("shape: D_AA shrinks as phrasing drifts from the keyword lists; 6% ≈ the paper's 92–95% accuracy\n");

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("banner/campaign_500_sites", |b| {
        b.iter(|| black_box(campaign_with_quirky(0.06, 500)))
    });
    c.final_summary();
}
