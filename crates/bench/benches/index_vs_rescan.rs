//! One-pass `CampaignIndex` vs per-figure rescans.
//!
//! `Datasets::new` now materialises the shared index once; every table
//! and figure reads it. The `rescan/*` benches reproduce the legacy
//! shape — each figure re-deriving its own dataset slices, class
//! lookups, and presence counts from the raw outcome — to keep the
//! speedup measurable after the port.

use criterion::Criterion;
use std::collections::{BTreeMap, BTreeSet};
use std::hint::black_box;
use topics_bench::{banner, shared};
use topics_core::analysis::dataset::{DatasetId, Datasets};
use topics_core::analysis::figures::PresenceRow;
use topics_core::analysis::{figures, table1};
use topics_core::crawler::record::{CampaignOutcome, Phase, VisitRecord};
use topics_core::evaluate;
use topics_core::net::domain::Domain;

fn legacy_visits(o: &CampaignOutcome, id: DatasetId) -> Vec<&VisitRecord> {
    o.sites
        .iter()
        .filter_map(move |s| match id {
            DatasetId::BeforeAccept => s.before.as_ref(),
            DatasetId::AfterAccept => s.after.as_ref().filter(|v| v.phase == Phase::AfterAccept),
            DatasetId::AfterReject => s.after.as_ref().filter(|v| v.phase == Phase::AfterReject),
        })
        .collect()
}

/// The legacy presence scan: every candidate CP × every visit of the
/// dataset (the hot spot the index's inverted single pass replaces).
fn legacy_presence_rows(o: &CampaignOutcome, id: DatasetId) -> Vec<PresenceRow> {
    let candidates: Vec<Domain> = o
        .allow_list
        .iter()
        .filter(|d| o.is_attested(d))
        .cloned()
        .collect();
    let mut present: BTreeMap<&Domain, usize> = BTreeMap::new();
    let mut called: BTreeMap<&Domain, usize> = BTreeMap::new();
    for v in legacy_visits(o, id) {
        let callers: BTreeSet<&Domain> = v
            .topics_calls
            .iter()
            .filter(|c| c.permitted())
            .map(|c| &c.caller_site)
            .collect();
        for cp in &candidates {
            if v.has_party(cp) {
                *present.entry(cp).or_insert(0) += 1;
                if callers.contains(cp) {
                    *called.entry(cp).or_insert(0) += 1;
                }
            }
        }
    }
    let mut rows: Vec<PresenceRow> = candidates
        .iter()
        .map(|cp| PresenceRow {
            cp: cp.clone(),
            present: present.get(cp).copied().unwrap_or(0),
            called: called.get(cp).copied().unwrap_or(0),
        })
        .filter(|r| r.present > 0)
        .collect();
    rows.sort_by(|a, b| b.present.cmp(&a.present).then(a.cp.cmp(&b.cp)));
    rows
}

fn main() {
    let sc = shared();
    let outcome = &sc.outcome;

    banner("CampaignIndex build + figure regeneration vs legacy rescans");

    let mut c = Criterion::default().configure_from_args();

    // Building the wrapper now includes the one-pass index.
    c.bench_function("index/build", |b| {
        b.iter(|| black_box(Datasets::new(outcome)))
    });

    // Presence counts, both ways — the figure the index helps most.
    c.bench_function("index/presence_rows", |b| {
        let ds = Datasets::new(outcome);
        b.iter(|| black_box(figures::presence_rows(&ds, DatasetId::AfterAccept)))
    });
    c.bench_function("rescan/presence_rows", |b| {
        b.iter(|| black_box(legacy_presence_rows(outcome, DatasetId::AfterAccept)))
    });

    // Table 1 through one shared wrapper vs a wrapper per call (the
    // legacy pattern: every consumer re-derived its own scans).
    c.bench_function("index/table1_amortised", |b| {
        let ds = Datasets::new(outcome);
        b.iter(|| black_box(table1::table1(&ds)))
    });
    c.bench_function("rescan/table1_fresh", |b| {
        b.iter(|| {
            let ds = Datasets::new(outcome);
            black_box(table1::table1(&ds))
        })
    });

    // The full report, end to end (index built once inside).
    c.bench_function("index/full_evaluation", |b| {
        b.iter(|| black_box(evaluate(outcome)))
    });

    c.final_summary();
}
