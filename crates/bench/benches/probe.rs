//! Attestation-probe micro-benchmarks: the sequential baseline vs the
//! sharded worker pool, plus the warm memo-cache path. The probe set is
//! rebuilt exactly the way a campaign builds it (allow-list plus every
//! encountered party and caller), so the timings reflect the real
//! `attestation-probe` phase at the shared bench scale.

use criterion::Criterion;
use std::collections::BTreeSet;
use std::hint::black_box;
use topics_bench::{banner, shared};
use topics_core::crawler::campaign::{clear_probe_memo, probe_domains, ATTESTATION_SNAPSHOT_DAY};
use topics_core::net::clock::Timestamp;
use topics_core::net::domain::Domain;
use topics_core::net::service::RetryPolicy;
use topics_core::{Lab, LabConfig};

fn main() {
    let sc = shared();
    let outcome = &sc.outcome;

    // The campaign's probe set: allow-list ∪ parties ∪ callers.
    let mut to_probe: BTreeSet<&Domain> = outcome.allow_list.iter().collect();
    for s in &outcome.sites {
        for v in s.before.iter().chain(s.after.iter()) {
            to_probe.extend(v.party_domains.iter());
            to_probe.extend(v.topics_calls.iter().map(|c| &c.caller_site));
        }
    }
    let domains: Vec<&Domain> = to_probe.into_iter().collect();
    let probe_time = Timestamp::from_days(ATTESTATION_SNAPSHOT_DAY);
    let world = sc.world();
    let retry = RetryPolicy::none();

    banner(&format!(
        "Attestation probing — {} distinct domains",
        domains.len()
    ));

    let mut c = Criterion::default().configure_from_args();
    c.bench_function("probe/sequential", |b| {
        b.iter(|| {
            black_box(probe_domains(
                world, &domains, probe_time, &retry, 1, None, None,
            ))
        })
    });
    for threads in [4usize, 8] {
        c.bench_function(&format!("probe/threads-{threads}"), |b| {
            b.iter(|| {
                black_box(probe_domains(
                    world, &domains, probe_time, &retry, threads, None, None,
                ))
            })
        });
    }

    // Whole campaigns with a warm probe memo: after the first run, every
    // probe is a cache hit (the crawl still dominates; the probe phase
    // collapses to a map scan).
    let sites = 500.min(outcome.sites.len());
    let warm_lab = Lab::new(LabConfig::quick(7, sites).with_probe_cache());
    clear_probe_memo();
    warm_lab.run(); // prime the memo
    c.bench_function("probe/campaign-warm-cache", |b| {
        b.iter(|| black_box(warm_lab.run()))
    });
    clear_probe_memo();

    c.final_summary();
}
