//! Figure 5 — questionable Before-Accept calls by Allowed∧Attested CPs.
//!
//! Paper shape: yandex.com first (611 sites) despite not being a top
//! caller; doubleclick — the top caller — entirely absent.

use criterion::Criterion;
use std::hint::black_box;
use topics_bench::{banner, shared};
use topics_core::analysis::dataset::Datasets;
use topics_core::analysis::figures::{fig5, render_fig5};

fn main() {
    let sc = shared();
    let ds = Datasets::new(&sc.outcome);
    banner("Figure 5 — questionable Before-Accept calls per CP (D_BA)");
    let rows = fig5(&ds, 15);
    eprintln!("{}", render_fig5(&rows));
    eprintln!("paper shape: yandex.com top (611); doubleclick.net absent\n");

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("fig5/questionable_rows", |b| {
        b.iter(|| black_box(fig5(&ds, 15)))
    });
    c.final_summary();
}
