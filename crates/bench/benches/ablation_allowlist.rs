//! Ablation — the allow-list fail-open bug (§2.3).
//!
//! Crawls the same world under three browser configurations:
//!
//! * **corrupted + fail-open** — Chromium 122's actual behaviour, the
//!   paper's setup: every anomalous caller executes;
//! * **healthy list** — a stock browser: anomalous calls are blocked;
//! * **corrupted + fail-closed** — the fixed browser Google promised:
//!   everything is blocked, legitimate callers included.
//!
//! The §4 findings exist *only* under the first configuration.

use criterion::Criterion;
use std::hint::black_box;
use topics_bench::{banner, BENCH_SEED};
use topics_core::analysis::anomalous::anomalous_stats;
use topics_core::analysis::dataset::{DatasetId, Datasets};
use topics_core::crawler::campaign::{run_campaign, AllowListSetup};
use topics_core::{Lab, LabConfig};

fn main() {
    banner("Ablation — allow-list setups (fail-open bug vs healthy vs fixed)");
    let lab = Lab::new(LabConfig::quick(BENCH_SEED, 2_000));
    eprintln!(
        "{:<28} {:>14} {:>16} {:>14}",
        "setup", "anomalous CPs", "anomalous calls", "legit callers"
    );
    for (setup, label) in [
        (
            AllowListSetup::CorruptedFailOpen,
            "corrupted, fail-open (bug)",
        ),
        (AllowListSetup::Healthy, "healthy list"),
        (
            AllowListSetup::CorruptedFailClosed,
            "corrupted, fail-closed",
        ),
    ] {
        let config = LabConfig::quick(BENCH_SEED, 2_000)
            .with_allow_list(setup)
            .campaign;
        let outcome = run_campaign(&lab.world, &config);
        let ds = Datasets::new(&outcome);
        let anomalous = anomalous_stats(&ds, DatasetId::AfterAccept);
        let legit = ds
            .calling_parties(DatasetId::AfterAccept)
            .iter()
            .filter(|cp| outcome.is_allowed(cp))
            .count();
        eprintln!(
            "{label:<28} {:>14} {:>16} {:>14}",
            anomalous.distinct_cps, anomalous.total_calls, legit
        );
    }
    eprintln!("paper shape: anomalous usage collapses to zero once the bug is fixed\n");

    // Benchmark the crawl itself per setup on a tiny slice.
    let tiny = Lab::new(LabConfig::quick(BENCH_SEED, 200));
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    for (setup, name) in [
        (
            AllowListSetup::CorruptedFailOpen,
            "crawl/corrupted_fail_open",
        ),
        (AllowListSetup::Healthy, "crawl/healthy"),
        (AllowListSetup::CorruptedFailClosed, "crawl/fail_closed"),
    ] {
        let config = LabConfig::quick(BENCH_SEED, 200)
            .with_allow_list(setup)
            .with_threads(2)
            .campaign;
        c.bench_function(name, |b| {
            b.iter(|| black_box(run_campaign(&tiny.world, &config)))
        });
    }
    c.final_summary();
}
