//! §3 repeated tests — ON/OFF alternation of A/B arms over time.
//!
//! Re-visits a fixed site set every six hours for four simulated days;
//! the time-windowed experimenters (taboola/casalemedia-style) produce
//! "consistent alternating periods: for some time, CP, and website, the
//! usage of the API is ON for all visits, followed by some time when it
//! is OFF".

use criterion::Criterion;
use std::hint::black_box;
use topics_bench::{banner, shared};
use topics_core::analysis::abtest::alternation_series;
use topics_core::crawler::campaign::{run_repeated, CampaignConfig};
use topics_core::net::clock::Timestamp;

fn main() {
    let sc = shared();
    banner("§3 — repeated visits: ON/OFF alternation");
    let urls: Vec<_> = sc.world().tranco_list().into_iter().take(30).collect();
    let times: Vec<Timestamp> = (0..16)
        .map(|i| Timestamp::CRAWL_START.plus_millis(i * 6 * 3_600_000))
        .collect();
    let config = CampaignConfig::default();
    let rounds = run_repeated(sc.world(), &urls, &times, &config);
    let series = alternation_series(&rounds);
    let alternating = series
        .iter()
        .filter(|s| s.alternates() && s.longest_run() >= 2)
        .count();
    eprintln!(
        "{} (CP, website) series over 16 rounds; {alternating} alternate in consistent runs",
        series.len()
    );
    for s in series
        .iter()
        .filter(|s| s.alternates() && s.longest_run() >= 3)
        .take(6)
    {
        let strip: String = s.on.iter().map(|&x| if x { '#' } else { '.' }).collect();
        eprintln!(
            "  {:<22} on {:<24} {strip}",
            s.cp.as_str(),
            s.website.as_str()
        );
    }
    eprintln!("paper shape: alternating ON/OFF periods per (CP, website)\n");

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("sec3/alternation_series", |b| {
        b.iter(|| black_box(alternation_series(&rounds)))
    });
    c.bench_function("sec3/one_repeated_round", |b| {
        b.iter(|| black_box(run_repeated(sc.world(), &urls[..5], &times[..1], &config)))
    });
    c.final_summary();
}
