//! Baseline comparison — third-party cookies vs the Topics API.
//!
//! The classical tracking paradigm the Topics API replaces (§1): exact
//! cookie profiles vs noisy topic histograms. Charts linkage accuracy
//! against population size: cookies stay at 100%, Topics decays toward
//! the random floor as the crowd grows — the intended privacy property,
//! with the residual risk of refs [17, 23].

use criterion::Criterion;
use std::hint::black_box;
use std::sync::Arc;
use topics_bench::{banner, BENCH_SEED};
use topics_core::baseline::{
    collect_profiles, cookie_match, generate_population, match_profiles, CookieTracker,
    SiteUniverse,
};
use topics_core::net::domain::Domain;
use topics_core::taxonomy::Classifier;

fn main() {
    banner("Baseline — cookie tracking vs Topics re-identification");
    let classifier = Arc::new(Classifier::new(BENCH_SEED).with_unclassifiable_rate(0.0));
    let universe = SiteUniverse::generate(BENCH_SEED, 1_500, &classifier);
    eprintln!(
        "{:>6} {:>14} {:>16} {:>14} {:>13}",
        "users", "cookie top-1", "cookie unique", "topics top-1", "random floor"
    );
    for &n in &[25usize, 50, 100, 200] {
        let mut users = generate_population(BENCH_SEED, n, &universe, classifier.clone(), 8, 30);
        let tracker = CookieTracker::new(BENCH_SEED, &universe, 0.4);
        let cookie_profiles = tracker.observe(&users, &universe, 8, 30);
        let ctx_a: Vec<usize> = (0..universe.len()).step_by(5).collect();
        let ctx_b: Vec<usize> = (2..universe.len()).step_by(7).collect();
        let a = collect_profiles(
            &mut users,
            &universe,
            &ctx_a,
            &Domain::parse("adv-a.com").unwrap(),
            4..8,
        );
        let b = collect_profiles(
            &mut users,
            &universe,
            &ctx_b,
            &Domain::parse("adv-b.com").unwrap(),
            4..8,
        );
        let topics = match_profiles(&a, &b);
        eprintln!(
            "{n:>6} {:>13.1}% {:>15.1}% {:>13.1}% {:>12.2}%",
            cookie_match(n).accuracy() * 100.0,
            CookieTracker::uniqueness(&cookie_profiles) * 100.0,
            topics.accuracy() * 100.0,
            topics.random_floor() * 100.0,
        );
    }
    eprintln!(
        "shape: cookies = perfect identifier; Topics beats random but decays with crowd size\n"
    );

    let mut users = generate_population(BENCH_SEED, 40, &universe, classifier.clone(), 8, 30);
    let ctx: Vec<usize> = (0..universe.len()).step_by(5).collect();
    let profiles = collect_profiles(
        &mut users,
        &universe,
        &ctx,
        &Domain::parse("adv-a.com").unwrap(),
        4..8,
    );
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("reident/match_40_users", |b| {
        b.iter(|| black_box(match_profiles(&profiles, &profiles)))
    });
    c.bench_function("reident/collect_profiles_10_users", |b| {
        b.iter(|| {
            let mut u = generate_population(BENCH_SEED, 10, &universe, classifier.clone(), 6, 20);
            black_box(collect_profiles(
                &mut u,
                &universe,
                &ctx[..60],
                &Domain::parse("adv-a.com").unwrap(),
                3..6,
            ))
        })
    });
    c.final_summary();
}
