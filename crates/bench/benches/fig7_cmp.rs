//! Figure 7 — probability of observing a CMP with and without a
//! questionable Topics call.
//!
//! Paper shape: the two distributions are roughly equal for most CMPs —
//! questionable calls are CMP-agnostic — except HubSpot (≈3×
//! over-represented; P(questionable | HubSpot) ≈ 12%, twice the
//! average) and LiveRamp.

use criterion::Criterion;
use std::hint::black_box;
use topics_bench::{banner, shared};
use topics_core::analysis::cmp_usage::{fig7, render_fig7};
use topics_core::analysis::dataset::Datasets;
use topics_core::analysis::report::pct;

fn main() {
    let sc = shared();
    let ds = Datasets::new(&sc.outcome);
    banner("Figure 7 — CMPs vs questionable calls (D_BA)");
    let f = fig7(&ds);
    eprintln!("{}", render_fig7(&f));
    let hubspot = f
        .rows
        .iter()
        .find(|r| r.cmp.spec().name == "HubSpot")
        .unwrap();
    eprintln!(
        "HubSpot: P(q|HubSpot) = {} vs average {} ({:.1}×); paper: 12% ≈ 2×\n",
        pct(hubspot.p_questionable_given_cmp()),
        pct(f.p_questionable()),
        hubspot.p_questionable_given_cmp() / f.p_questionable().max(1e-9),
    );

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("fig7/cmp_conditionals", |b| b.iter(|| black_box(fig7(&ds))));
    c.final_summary();
}
