//! Figure 2 — number of websites where a CP is present vs where it
//! calls the Topics API (D_AA, Allowed∧Attested CPs, top 15).
//!
//! Paper shape: google-analytics the most pervasive but never calling;
//! doubleclick second, calling on ≈1/3 of its sites; criteo /
//! rubiconproject / casalemedia leveraging the API the most.

use criterion::Criterion;
use std::hint::black_box;
use topics_bench::{banner, shared};
use topics_core::analysis::dataset::Datasets;
use topics_core::analysis::figures::{fig2, render_fig2};

fn main() {
    let sc = shared();
    let ds = Datasets::new(&sc.outcome);
    banner("Figure 2 — CP presence vs calls (D_AA)");
    eprintln!("{}", render_fig2(&fig2(&ds, 15)));
    eprintln!("paper shape: GA #1 presence & 0 calls; doubleclick ≈1/3 enabled; bing 0 calls\n");

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("fig2/presence_rows", |b| {
        b.iter(|| black_box(fig2(&ds, 15)))
    });
    c.final_summary();
}
