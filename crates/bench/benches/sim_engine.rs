//! Population engine — arena simulate vs the dense per-user baseline.
//!
//! The `simulate` engine replaces the dense re-identification path of
//! `topics_core::baseline::reident` (one boxed `User` per person, one
//! `TAXONOMY_SIZE`-float histogram per profile, O(A × B) cosine
//! matching) with an epoch-major arena, sparse CSR profiles, and
//! inverted candidate lists. This bench runs **both** pipelines at
//! scales the dense path can still finish, prints the honest wall-clock
//! ratio, and then Criterion-times the engine's stages. The dense path
//! is quadratic in users, so the ratio grows with scale — the committed
//! EXPERIMENTS.md table carries the engine-only absolutes at 100k/1M
//! users where the dense path cannot run at all.

use criterion::Criterion;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use topics_bench::{banner, BENCH_SEED};
use topics_core::baseline::{
    collect_profiles, generate_population, match_profiles, simulate, SimConfig, SiteUniverse,
};
use topics_core::net::domain::Domain;
use topics_core::taxonomy::Classifier;

/// One dense-path run: population + two panel collections + matching.
fn dense_wall_ms(users: usize, epochs: u64, universe: &SiteUniverse, cls: &Arc<Classifier>) -> u64 {
    let started = Instant::now();
    let mut pop = generate_population(BENCH_SEED, users, universe, cls.clone(), epochs, 15);
    let ctx_a: Vec<usize> = (0..universe.len()).step_by(5).collect();
    let ctx_b: Vec<usize> = (2..universe.len()).step_by(7).collect();
    let first = epochs.saturating_sub(3);
    let a = collect_profiles(
        &mut pop,
        universe,
        &ctx_a,
        &Domain::parse("adv-a.com").unwrap(),
        first..epochs,
    );
    let b = collect_profiles(
        &mut pop,
        universe,
        &ctx_b,
        &Domain::parse("adv-b.com").unwrap(),
        first..epochs,
    );
    black_box(match_profiles(&a, &b));
    started.elapsed().as_millis() as u64
}

/// One engine run at the same shape: arena advancement + both panels +
/// every checkpoint of the linkage attack.
fn engine_wall_ms(users: usize, epochs: u64, threads: usize) -> u64 {
    let cfg = SimConfig {
        sites: 1_000,
        visits_per_epoch: 15,
        sample: users,
        ..SimConfig::new(BENCH_SEED, users, epochs)
    };
    let universe = simulate::build_universe(&cfg);
    let started = Instant::now();
    let arena = simulate::build_arena(&cfg, &universe, threads).expect("bench config validates");
    black_box(simulate::reident_curve(&cfg, &universe, &arena, threads));
    started.elapsed().as_millis() as u64
}

fn main() {
    banner("Population engine — arena simulate vs dense per-user baseline");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cls = Arc::new(Classifier::new(BENCH_SEED).with_unclassifiable_rate(0.0));
    let universe = SiteUniverse::generate(BENCH_SEED, 1_000, &cls);
    let epochs = 8u64;
    eprintln!(
        "{:>8} {:>12} {:>14} {:>9}  ({threads} threads, {epochs} epochs)",
        "users", "dense ms", "engine ms", "speedup"
    );
    for &users in &[500usize, 2_000, 5_000] {
        let dense = dense_wall_ms(users, epochs, &universe, &cls).max(1);
        let engine = engine_wall_ms(users, epochs, threads).max(1);
        eprintln!(
            "{users:>8} {dense:>12} {engine:>14} {:>8.1}×",
            dense as f64 / engine as f64
        );
    }
    eprintln!("shape: the dense path is O(users²) in matching alone; the gap widens with scale\n");

    let cfg = SimConfig {
        sites: 1_000,
        visits_per_epoch: 15,
        sample: 2_000,
        ..SimConfig::new(BENCH_SEED, 10_000, 8)
    };
    let sim_universe = simulate::build_universe(&cfg);
    let arena = simulate::build_arena(&cfg, &sim_universe, threads).expect("config validates");
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("sim/advance_10k_users_8_epochs", |b| {
        b.iter(|| black_box(simulate::build_arena(&cfg, &sim_universe, threads).unwrap()))
    });
    c.bench_function("sim/kanon_10k_users", |b| {
        b.iter(|| black_box(simulate::kanon_curve(&arena, threads)))
    });
    c.bench_function("sim/attack_10k_users_2k_sample", |b| {
        b.iter(|| {
            black_box(simulate::reident_curve(
                &cfg,
                &sim_universe,
                &arena,
                threads,
            ))
        })
    });
    c.final_summary();
}
