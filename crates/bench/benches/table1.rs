//! Table 1 — overall status of Topics API usage.
//!
//! Regenerates the Allowed/Attested caller matrix from a crawled
//! campaign and benchmarks its computation. Paper values (50k scale):
//! 193 Allowed, 12 Allowed∧¬Attested; D_AA: 47 / 1 / 2,614; D_BA: 28 /
//! 1,308.

use criterion::Criterion;
use std::hint::black_box;
use topics_bench::{banner, shared};
use topics_core::analysis::dataset::Datasets;
use topics_core::analysis::table1::table1;

fn main() {
    let sc = shared();
    let ds = Datasets::new(&sc.outcome);
    banner("Table 1 — overall status of Topics API usage");
    eprintln!("{}", table1(&ds).render());
    eprintln!(
        "paper (50k scale): Allowed 193; Allowed&!Attested 12; D_AA 47 / 1 / 2,614; D_BA 28 / 1,308\n"
    );

    let mut c = Criterion::default().sample_size(20).configure_from_args();
    c.bench_function("table1/compute", |b| b.iter(|| black_box(table1(&ds))));
    c.final_summary();
}
