//! Micro-benchmarks of the hot components: the HTML parser, the
//! TagScript parser, the Topics engine, and a full single-page visit.
//! These are the per-page costs the 50,000-site campaign multiplies.

use criterion::Criterion;
use std::hint::black_box;
use std::sync::Arc;
use topics_core::browser::attestation::AttestationStore;
use topics_core::browser::browser::{Browser, BrowserConfig};
use topics_core::browser::origin::Site;
use topics_core::browser::{html, script};
use topics_core::net::clock::Timestamp;
use topics_core::net::url::Url;
use topics_core::taxonomy::Classifier;
use topics_core::webgen::{World, WorldConfig};

fn main() {
    let mut c = Criterion::default().configure_from_args();

    // A realistic page: banner + CMP + GTM + tags + pixels.
    let world = World::generate(WorldConfig::scaled(5, 300));
    let spec = world
        .sites()
        .iter()
        .find(|s| s.has_banner && s.gtm.is_some() && !s.platforms.is_empty())
        .expect("a busy page exists");
    let page = {
        use topics_core::net::http::{HttpRequest, ResourceKind};
        use topics_core::net::service::NetworkService;
        let req = HttpRequest::get(Url::https(spec.domain.clone(), "/"), ResourceKind::Document);
        world.fetch(&req, Timestamp::CRAWL_START).unwrap().body
    };
    c.bench_function("micro/html_parse_busy_page", |b| {
        b.iter(|| black_box(html::parse(&page)))
    });

    let tag = "# tag\ncookie uid deadbeef\nimg https://cp.example/px.gif\nafter 100 {\nconsent {\nab 0.7500 site {\ntopics fetch https://cp.example/bid\n}\n}\nnoconsent {\nab 0.2000 site {\nab 0.7500 site {\ntopics fetch https://cp.example/bid\n}\n}\n}\n}\n";
    c.bench_function("micro/tagscript_parse", |b| {
        b.iter(|| black_box(script::parse(tag).unwrap()))
    });

    // Topics engine with three epochs of history.
    let classifier = Arc::new(Classifier::new(5).with_unclassifiable_rate(0.0));
    let caller = topics_core::net::Domain::parse("adnet.example").unwrap();
    let mut engine = topics_core::browser::topics::TopicsEngine::new(classifier.clone(), 9, true);
    for epoch in 0..3 {
        for i in 0..30 {
            let s = Site::of(&Url::parse(&format!("https://h{epoch}x{i}.com/")).unwrap());
            engine.record_visit(&s, Timestamp::from_weeks(epoch));
            engine.record_observation(&caller, &s, Timestamp::from_weeks(epoch));
        }
    }
    let target = Site::of(&Url::parse("https://visited.example/").unwrap());
    c.bench_function("micro/browsing_topics_call", |b| {
        b.iter(|| black_box(engine.browsing_topics(&caller, &target, Timestamp::from_weeks(3))))
    });

    // One full page visit through the browser (fresh profile each iter).
    let url = Url::https(spec.domain.clone(), "/");
    c.bench_function("micro/full_page_visit", |b| {
        b.iter(|| {
            let mut browser = Browser::new(
                classifier.clone(),
                AttestationStore::corrupted(),
                BrowserConfig {
                    ab_seed: world.seed(),
                    ..BrowserConfig::default()
                },
                17,
            );
            black_box(browser.visit(&world, &url, Timestamp::CRAWL_START).unwrap())
        })
    });

    c.final_summary();
}
