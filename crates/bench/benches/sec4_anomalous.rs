//! §4 — anomalous usage by non-allowed callers.
//!
//! Paper shape (50k scale): 2,614 non-Allowed CPs make 3,450 calls in
//! D_AA; 72% of calls share the website's second-level label; ~95% of
//! the pages carry Google Tag Manager; every call uses the JavaScript
//! `browsingTopics()` entry point — all observable only because the
//! allow-list was corrupted and Chromium fails open.

use criterion::Criterion;
use std::hint::black_box;
use topics_bench::{banner, shared};
use topics_core::analysis::anomalous::{anomalous_stats, render_anomalous};
use topics_core::analysis::dataset::{DatasetId, Datasets};

fn main() {
    let sc = shared();
    let ds = Datasets::new(&sc.outcome);
    banner("§4 — anomalous usage (D_AA, non-Allowed callers)");
    eprintln!(
        "{}",
        render_anomalous(&anomalous_stats(&ds, DatasetId::AfterAccept))
    );
    eprintln!("paper (50k scale): 2,614 CPs / 3,450 calls / 72% same-label / 95% GTM / 100% JS\n");

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("sec4/anomalous_stats", |b| {
        b.iter(|| black_box(anomalous_stats(&ds, DatasetId::AfterAccept)))
    });
    c.final_summary();
}
