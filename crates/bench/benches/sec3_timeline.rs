//! §3 — the enrolment timeline extracted from attestation files.
//!
//! Paper shape: first attestation June 16th, 2023; roughly a dozen new
//! enrolments per month until May 2024; the October 2024 re-issuance
//! adds the `enrollment_site` field (observable by re-probing after
//! that date).

use criterion::Criterion;
use std::hint::black_box;
use topics_bench::{banner, shared};
use topics_core::analysis::timeline::{render_timeline, timeline};
use topics_core::crawler::campaign::probe_attestation;
use topics_core::net::clock::Timestamp;
use topics_core::net::domain::Domain;

fn main() {
    let sc = shared();
    banner("§3 — enrolment timeline");
    let t = timeline(&sc.outcome);
    eprintln!("{}", render_timeline(&t));

    // Re-probe one CP after the October 17th, 2024 schema update: the
    // re-issued file now carries enrollment_site.
    let criteo = Domain::parse("criteo.com").unwrap();
    let late = Timestamp::from_days(520);
    let reprobe = probe_attestation(sc.world(), &criteo, late);
    eprintln!(
        "re-probe of criteo.com after 2024-10-17: enrollment_site present = {}\n(paper: 'many of the enrolled CPs had to update their attestations')\n",
        reprobe.valid.map(|v| v.has_enrollment_site).unwrap_or(false)
    );

    let mut c = Criterion::default().sample_size(20).configure_from_args();
    c.bench_function("sec3/timeline", |b| {
        b.iter(|| black_box(timeline(&sc.outcome)))
    });
    c.final_summary();
}
