//! Figure 6 — share of websites where a CP calls, by website TLD region
//! (.com / .jp / .ru / EU / other), for the top-4 questionable CPs.
//!
//! Paper shape: presence varies strongly by region (yandex absent from
//! Japan, nearly absent from the EU; criteo worldwide) while the
//! enabled fractions show no clear regional trend — questionable calls
//! happen even on EU sites where the GDPR definitely applies.

use criterion::Criterion;
use std::hint::black_box;
use topics_bench::{banner, shared};
use topics_core::analysis::dataset::Datasets;
use topics_core::analysis::figures::{fig5, fig6, render_fig6};
use topics_core::net::region::Region;

fn main() {
    let sc = shared();
    let ds = Datasets::new(&sc.outcome);
    let top4: Vec<_> = fig5(&ds, 4).into_iter().map(|r| r.cp).collect();
    banner("Figure 6 — enabled % per website region (D_BA, top-4 questionable CPs)");
    let rows = fig6(&ds, &top4);
    eprintln!("{}", render_fig6(&rows));
    // EU-violation check: calls on GDPR-TLD sites exist.
    let eu_idx = Region::ALL
        .iter()
        .position(|r| *r == Region::EuropeanUnion)
        .unwrap();
    let eu_calls: usize = rows.iter().map(|r| r.by_region[eu_idx].1).sum();
    eprintln!(
        "questionable calls on EU-TLD sites: {eu_calls} (paper: present — a clear GDPR concern)\n"
    );

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("fig6/regional_breakdown", |b| {
        b.iter(|| black_box(fig6(&ds, &top4)))
    });
    c.final_summary();
}
