//! Figure 3 — enabled fraction per CP, the A/B-experiment clusters.
//!
//! Paper shape: fractions cluster near 100/75/66/50/33/25% —
//! authorizedvault ≈100%, criteo and cpx.to 75%, yandex 66%,
//! doubleclick 33%.

use criterion::Criterion;
use std::hint::black_box;
use topics_bench::{banner, shared};
use topics_core::analysis::abtest::{clustering_share, fit_fraction};
use topics_core::analysis::dataset::Datasets;
use topics_core::analysis::figures::{fig3, render_fig3};
use topics_core::analysis::report::pct;

fn main() {
    let sc = shared();
    let ds = Datasets::new(&sc.outcome);
    banner("Figure 3 — enabled % per CP (A/B fractions)");
    let rows = fig3(&ds, 15);
    eprintln!("{}", render_fig3(&rows));
    for r in &rows {
        let fit = fit_fraction(r.enabled_fraction());
        eprintln!(
            "  {:<24} {:>7}  nearest arm {:>4.0}%  delta {:.3}",
            r.cp.as_str(),
            pct(r.enabled_fraction()),
            fit.nearest * 100.0,
            fit.distance
        );
    }
    eprintln!(
        "clustered within 8pp of an arm: {}\npaper shape: clusters at 100/75/66/50/33/25%\n",
        pct(clustering_share(&rows, 0.08))
    );

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("fig3/enabled_fractions", |b| {
        b.iter(|| black_box(fig3(&ds, 15)))
    });
    c.bench_function("fig3/clustering_share", |b| {
        b.iter(|| black_box(clustering_share(&rows, 0.08)))
    });
    c.final_summary();
}
