//! # topics-baseline — the third-party-cookie baseline
//!
//! The paper frames the Topics API as the replacement for cookie-based
//! cross-site tracking (§1) and cites re-identification analyses of the
//! API ([17, 23]). This crate implements that comparison end to end:
//!
//! * [`population`] — synthetic users with interest-driven browsing that
//!   feeds real per-user [`topics_browser::topics::TopicsEngine`]s;
//! * [`tracker`] — the classical third-party-cookie tracker: exact
//!   cross-site profiles and near-total fingerprint uniqueness;
//! * [`reident`] — the Topics re-identification attack: per-context
//!   topic histograms and nearest-neighbour linkage, measured against
//!   the cookie baseline's trivially perfect linkage;
//! * [`arena`] — the same population semantics at 10⁵–10⁶ users: one
//!   epoch-major arena of packed top-5 slots plus per-user taxonomy
//!   bitsets, advanced in parallel with byte-identical results for any
//!   thread count;
//! * [`simulate`] — population-scale k-anonymity and re-identification
//!   curves over the arena, with sparse CSR profiles and an
//!   inverted-index attack kernel (the `topics-lab simulate` engine).
//!
//! The `baseline_reident`, `ablation_noise` and `sim_engine` benches
//! build on these to chart profiling power versus population size,
//! versus the 5% noise mechanism, and versus the legacy dense path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod population;
pub mod reident;
pub mod simulate;
pub mod tracker;

pub use arena::{PopulationArena, TopicBitset};
pub use population::{generate_population, generate_population_with_noise, SiteUniverse, User};
pub use reident::{
    collect_profiles, cookie_match, isolated_fraction, match_profiles, match_profiles_top_k,
    profile_entropy, MatchResult, TopicProfile,
};
pub use simulate::{KanonRow, ReidentRow, SimConfig, SimRun, SimStats};
pub use tracker::CookieTracker;
