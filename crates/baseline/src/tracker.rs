//! The classical third-party-cookie tracker — the baseline paradigm the
//! Topics API is designed to replace (§1).
//!
//! A tracker embedded on a fraction of the web sets one identifier
//! cookie per browser and sees that identifier on every embedding site:
//! cross-site profiles are exact site lists, and linking two observation
//! contexts is trivial because the identifier itself travels.

use crate::population::{SiteUniverse, User};
use std::collections::{BTreeMap, BTreeSet};
use topics_net::seed;

/// A third-party tracker with a given coverage of the site universe.
#[derive(Debug, Clone)]
pub struct CookieTracker {
    /// Universe indices of the sites embedding this tracker.
    embedded_on: BTreeSet<usize>,
}

impl CookieTracker {
    /// A tracker embedded on ~`coverage` of the universe.
    pub fn new(seed_val: u64, universe: &SiteUniverse, coverage: f64) -> CookieTracker {
        let embedded_on = (0..universe.len())
            .filter(|&i| seed::bernoulli(seed::derive_idx(seed_val, i as u64), "embed", coverage))
            .collect();
        CookieTracker { embedded_on }
    }

    /// Number of embedding sites.
    pub fn coverage(&self) -> usize {
        self.embedded_on.len()
    }

    /// True when the tracker sits on universe site `idx`.
    pub fn embedded(&self, idx: usize) -> bool {
        self.embedded_on.contains(&idx)
    }

    /// The profile the tracker builds for one user over `epochs` epochs:
    /// the exact set of embedding sites the user visited, keyed by the
    /// user's cookie identifier. With third-party cookies the identifier
    /// IS the user, so the map key is simply `user.id`.
    pub fn observe(
        &self,
        users: &[User],
        universe: &SiteUniverse,
        epochs: u64,
        visits_per_epoch: usize,
    ) -> BTreeMap<usize, BTreeSet<usize>> {
        let mut profiles: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for user in users {
            let entry = profiles.entry(user.id).or_default();
            for epoch in 0..epochs {
                for idx in user.visits_in_epoch(universe, epoch, visits_per_epoch) {
                    if self.embedded(idx) {
                        entry.insert(idx);
                    }
                }
            }
        }
        profiles
    }

    /// Fraction of users whose cookie profile is unique in the
    /// population — with exact site sets this is typically ≈1, the
    /// fingerprinting power the Topics API intentionally destroys.
    pub fn uniqueness(profiles: &BTreeMap<usize, BTreeSet<usize>>) -> f64 {
        if profiles.is_empty() {
            return 0.0;
        }
        let mut counts: BTreeMap<&BTreeSet<usize>, usize> = BTreeMap::new();
        for p in profiles.values() {
            *counts.entry(p).or_insert(0) += 1;
        }
        let unique = profiles.values().filter(|p| counts[*p] == 1).count();
        unique as f64 / profiles.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::generate_population;
    use std::sync::Arc;
    use topics_taxonomy::Classifier;

    fn setup() -> (SiteUniverse, Vec<User>, CookieTracker) {
        let classifier = Arc::new(Classifier::new(9).with_unclassifiable_rate(0.0));
        let universe = SiteUniverse::generate(9, 500, &classifier);
        let users = generate_population(9, 40, &universe, classifier, 3, 25);
        let tracker = CookieTracker::new(9, &universe, 0.4);
        (universe, users, tracker)
    }

    #[test]
    fn coverage_is_close_to_requested() {
        let (universe, _, tracker) = setup();
        let frac = tracker.coverage() as f64 / universe.len() as f64;
        assert!((frac - 0.4).abs() < 0.08, "coverage {frac}");
    }

    #[test]
    fn profiles_contain_only_embedded_sites() {
        let (universe, users, tracker) = setup();
        let profiles = tracker.observe(&users, &universe, 3, 25);
        assert_eq!(profiles.len(), users.len());
        for sites in profiles.values() {
            for &i in sites {
                assert!(tracker.embedded(i));
            }
        }
    }

    #[test]
    fn cookie_profiles_are_nearly_all_unique() {
        let (universe, users, tracker) = setup();
        let profiles = tracker.observe(&users, &universe, 3, 25);
        let u = CookieTracker::uniqueness(&profiles);
        assert!(u > 0.9, "cookie fingerprints should be unique, got {u}");
    }

    #[test]
    fn uniqueness_degenerate_cases() {
        assert_eq!(CookieTracker::uniqueness(&BTreeMap::new()), 0.0);
        let mut same = BTreeMap::new();
        same.insert(0, BTreeSet::from([1, 2]));
        same.insert(1, BTreeSet::from([1, 2]));
        assert_eq!(CookieTracker::uniqueness(&same), 0.0);
    }
}
