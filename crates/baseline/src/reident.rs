//! Re-identification: linking the same user across two observation
//! contexts.
//!
//! The Topics adversary (refs [17, 23] of the paper) collects
//! `browsingTopics()` answers for each user in two disjoint site
//! contexts, builds a topic histogram per context, and links users by
//! greedy nearest-neighbour cosine matching. The cookie baseline links
//! perfectly by construction (the identifier travels with the user), so
//! the interesting quantity is how far below 100% — and how far above
//! the 1/N random-guess floor — the Topics attack lands, and how much
//! the 5% noise mechanism helps.

use crate::population::{SiteUniverse, User};
use topics_net::clock::Timestamp;
use topics_net::domain::Domain;
use topics_taxonomy::TAXONOMY_SIZE;

/// A per-user topic histogram collected by an adversary in one context.
///
/// The Euclidean norm is computed once at construction and cached —
/// the matcher compares every profile against the whole population, so
/// recomputing both norms inside every [`TopicProfile::cosine`] call
/// was the dominant cost of the O(N²) linkage loop. The histogram is
/// private to keep the cache honest.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicProfile {
    /// The user the profile belongs to (ground truth, used for scoring).
    pub user_id: usize,
    histogram: Vec<f32>,
    norm: f64,
}

impl TopicProfile {
    /// Build a profile, caching its Euclidean norm.
    pub fn new(user_id: usize, histogram: Vec<f32>) -> TopicProfile {
        let norm = histogram
            .iter()
            .map(|&a| f64::from(a) * f64::from(a))
            .sum::<f64>()
            .sqrt();
        TopicProfile {
            user_id,
            histogram,
            norm,
        }
    }

    /// Topic counts indexed by topic id.
    pub fn histogram(&self) -> &[f32] {
        &self.histogram
    }

    /// The cached Euclidean norm of the histogram.
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Cosine similarity with another profile, using both cached norms.
    pub fn cosine(&self, other: &TopicProfile) -> f64 {
        if self.norm == 0.0 || other.norm == 0.0 {
            return 0.0;
        }
        let dot: f64 = self
            .histogram
            .iter()
            .zip(&other.histogram)
            .map(|(a, b)| f64::from(*a) * f64::from(*b))
            .sum();
        dot / (self.norm * other.norm)
    }
}

/// Collect topic profiles for every user: the adversary calls the API as
/// `caller` once per epoch in `epochs`, on each of `context_sites`
/// (sites where it is embedded), accumulating returned topics.
///
/// The call path runs the real engine — caller observation filtering and
/// the 5% noise included — so the attack sees exactly what a real
/// Topics caller would.
pub fn collect_profiles(
    users: &mut [User],
    universe: &SiteUniverse,
    context_sites: &[usize],
    caller: &Domain,
    epochs: std::ops::Range<u64>,
) -> Vec<TopicProfile> {
    let mut out = Vec::with_capacity(users.len());
    for user in users.iter_mut() {
        let mut histogram = vec![0.0f32; TAXONOMY_SIZE + 1];
        for epoch in epochs.clone() {
            let now = Timestamp::from_weeks(epoch);
            for &idx in context_sites {
                let site = universe.site(idx);
                // The adversary's presence on the site counts as an
                // observation, making it eligible for real topics later.
                user.engine.record_observation(caller, &site, now);
                if let Some(answer) = user.engine.browsing_topics(caller, &site, now) {
                    for t in answer.topics {
                        histogram[t.topic.get() as usize] += 1.0;
                    }
                }
            }
        }
        out.push(TopicProfile::new(user.id, histogram));
    }
    out
}

/// Result of a matching experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchResult {
    /// Users matched to their own other-context profile.
    pub correct: usize,
    /// Population size.
    pub total: usize,
}

impl MatchResult {
    /// Top-1 accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// The random-guess floor for this population.
    pub fn random_floor(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            1.0 / self.total as f64
        }
    }
}

/// Match every profile in `b` against `a` by top-1 cosine similarity.
pub fn match_profiles(a: &[TopicProfile], b: &[TopicProfile]) -> MatchResult {
    let mut correct = 0;
    for pb in b {
        // One cosine per candidate (the old `max_by` evaluated two per
        // comparison); `>=` keeps `max_by`'s last-maximum tie behaviour.
        let mut best = f64::NEG_INFINITY;
        let mut best_id = None;
        for p in a {
            let s = pb.cosine(p);
            if s >= best {
                best = s;
                best_id = Some(p.user_id);
            }
        }
        if best_id == Some(pb.user_id) {
            correct += 1;
        }
    }
    MatchResult {
        correct,
        total: b.len(),
    }
}

/// The cookie-baseline equivalent: the identifier travels, so linking is
/// exact whenever the user visited at least one embedding site in both
/// contexts (a formality kept for the comparison tables).
pub fn cookie_match(total: usize) -> MatchResult {
    MatchResult {
        correct: total,
        total,
    }
}

/// Top-k linkage: for every profile in `b`, is the true match among the
/// `k` most similar profiles of `a`? (k = 1 reduces to
/// [`match_profiles`].) Jha et al. (ref 23 of the paper) report the
/// attack this way —
/// even when top-1 fails, a small candidate set often contains the
/// victim.
pub fn match_profiles_top_k(a: &[TopicProfile], b: &[TopicProfile], k: usize) -> MatchResult {
    let mut correct = 0;
    for pb in b {
        let mut scored: Vec<(f64, usize)> = a.iter().map(|p| (pb.cosine(p), p.user_id)).collect();
        scored.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("cosine is finite"));
        if scored.iter().take(k).any(|(_, id)| *id == pb.user_id) {
            correct += 1;
        }
    }
    MatchResult {
        correct,
        total: b.len(),
    }
}

/// Shannon entropy (bits) of one profile's topic distribution — a
/// coarse "how identifying is this" measure: flat profiles are
/// anonymous, spiky profiles are fingerprints.
pub fn profile_entropy(p: &TopicProfile) -> f64 {
    let total: f64 = p.histogram.iter().map(|&x| f64::from(x)).sum();
    if total <= 0.0 {
        return 0.0;
    }
    -p.histogram
        .iter()
        .filter(|&&x| x > 0.0)
        .map(|&x| {
            let q = f64::from(x) / total;
            q * q.log2()
        })
        .sum::<f64>()
}

/// Fraction of profiles whose nearest neighbour within the *same* set is
/// below `threshold` similarity — profiles isolated in profile space,
/// i.e. potential unique fingerprints.
pub fn isolated_fraction(profiles: &[TopicProfile], threshold: f64) -> f64 {
    if profiles.len() < 2 {
        return 0.0;
    }
    let isolated = profiles
        .iter()
        .enumerate()
        .filter(|(i, p)| {
            profiles
                .iter()
                .enumerate()
                .filter(|(j, _)| j != i)
                .map(|(_, q)| p.cosine(q))
                .fold(0.0_f64, f64::max)
                < threshold
        })
        .count();
    isolated as f64 / profiles.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::generate_population;
    use std::sync::Arc;
    use topics_taxonomy::Classifier;

    fn setup(n_users: usize) -> (SiteUniverse, Vec<User>) {
        let classifier = Arc::new(Classifier::new(13).with_unclassifiable_rate(0.0));
        let universe = SiteUniverse::generate(13, 600, &classifier);
        let users = generate_population(13, n_users, &universe, classifier, 8, 30);
        (universe, users)
    }

    fn caller(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn cosine_properties() {
        let a = TopicProfile::new(0, vec![1.0, 0.0, 2.0]);
        let b = TopicProfile::new(1, vec![2.0, 0.0, 4.0]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-9, "colinear");
        let c = TopicProfile::new(2, vec![0.0, 5.0, 0.0]);
        assert_eq!(a.cosine(&c), 0.0, "orthogonal");
        let zero = TopicProfile::new(3, vec![0.0; 3]);
        assert_eq!(a.cosine(&zero), 0.0, "degenerate");
        assert!((a.norm() - 5.0f64.sqrt()).abs() < 1e-12, "cached norm");
        assert_eq!(zero.norm(), 0.0);
        assert_eq!(a.histogram(), &[1.0, 0.0, 2.0]);
    }

    #[test]
    fn topics_attack_beats_random_but_loses_to_cookies() {
        let (universe, mut users) = setup(25);
        let ctx_a: Vec<usize> = (0..universe.len()).step_by(7).collect();
        let ctx_b: Vec<usize> = (3..universe.len()).step_by(11).collect();
        let profiles_a =
            collect_profiles(&mut users, &universe, &ctx_a, &caller("adv-a.com"), 4..8);
        let profiles_b =
            collect_profiles(&mut users, &universe, &ctx_b, &caller("adv-b.com"), 4..8);
        let result = match_profiles(&profiles_a, &profiles_b);
        let cookies = cookie_match(users.len());
        assert_eq!(cookies.accuracy(), 1.0);
        assert!(
            result.accuracy() > 3.0 * result.random_floor(),
            "topics attack should beat random: {} vs floor {}",
            result.accuracy(),
            result.random_floor()
        );
        assert!(
            result.accuracy() < 1.0,
            "topics should not be a perfect identifier"
        );
    }

    #[test]
    fn matching_is_stable() {
        let (universe, mut users) = setup(10);
        let ctx: Vec<usize> = (0..50).collect();
        let a = collect_profiles(&mut users, &universe, &ctx, &caller("x.com"), 4..7);
        let b = collect_profiles(&mut users, &universe, &ctx, &caller("x.com"), 4..7);
        // Same caller, same context, same epochs: identical answers.
        let r = match_profiles(&a, &b);
        assert_eq!(r.accuracy(), 1.0);
    }

    #[test]
    fn top_k_dominates_top_1() {
        let (universe, mut users) = setup(20);
        let ctx_a: Vec<usize> = (0..universe.len()).step_by(7).collect();
        let ctx_b: Vec<usize> = (3..universe.len()).step_by(11).collect();
        let a = collect_profiles(&mut users, &universe, &ctx_a, &caller("a.com"), 4..8);
        let b = collect_profiles(&mut users, &universe, &ctx_b, &caller("b.com"), 4..8);
        let top1 = match_profiles_top_k(&a, &b, 1);
        let top3 = match_profiles_top_k(&a, &b, 3);
        let top_all = match_profiles_top_k(&a, &b, a.len());
        assert_eq!(top1.correct, match_profiles(&a, &b).correct);
        assert!(top3.correct >= top1.correct);
        assert_eq!(top_all.accuracy(), 1.0, "k = n always contains the victim");
    }

    #[test]
    fn entropy_behaves() {
        let uniform = TopicProfile::new(0, vec![1.0; 8]);
        assert!((profile_entropy(&uniform) - 3.0).abs() < 1e-9, "log2(8)");
        let point = TopicProfile::new(1, vec![0.0, 9.0, 0.0]);
        assert_eq!(profile_entropy(&point), 0.0);
        let empty = TopicProfile::new(2, vec![0.0; 4]);
        assert_eq!(profile_entropy(&empty), 0.0);
    }

    #[test]
    fn isolation_metric() {
        let spike = |id: usize, at: usize| {
            let mut h = vec![0.0f32; 6];
            h[at] = 1.0;
            TopicProfile::new(id, h)
        };
        // Three orthogonal profiles: all isolated at any threshold > 0.
        let set = vec![spike(0, 0), spike(1, 1), spike(2, 2)];
        assert_eq!(isolated_fraction(&set, 0.5), 1.0);
        // Two identical profiles: nobody is isolated.
        let twins = vec![spike(0, 0), spike(1, 0)];
        assert_eq!(isolated_fraction(&twins, 0.5), 0.0);
        assert_eq!(isolated_fraction(&[], 0.5), 0.0);
        assert_eq!(isolated_fraction(&twins[..1], 0.5), 0.0);
    }

    #[test]
    fn match_result_metrics() {
        let r = MatchResult {
            correct: 5,
            total: 20,
        };
        assert_eq!(r.accuracy(), 0.25);
        assert_eq!(r.random_floor(), 0.05);
        let empty = MatchResult {
            correct: 0,
            total: 0,
        };
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.random_floor(), 0.0);
    }
}
