//! A synthetic user population with interest-driven browsing.
//!
//! The re-identification experiments (refs [17, 23] of the paper) need
//! many users with persistent browsing habits. Each user carries a few
//! interest topics and, epoch after epoch, visits sites whose classifier
//! topics overlap those interests — so their Topics profiles are stable
//! enough to attack, like real users'.

use std::sync::Arc;
use topics_browser::origin::Site;
use topics_browser::topics::TopicsEngine;
use topics_net::clock::Timestamp;
use topics_net::domain::Domain;
use topics_net::seed;
use topics_net::url::Url;
use topics_taxonomy::{Classification, Classifier, Taxonomy, TopicId, TAXONOMY_SIZE};

/// The browsable site universe: a pool of domains with stable
/// classifier-assigned topics.
#[derive(Debug, Clone)]
pub struct SiteUniverse {
    domains: Vec<Domain>,
    topics: Vec<Vec<TopicId>>,
    by_topic: Vec<Vec<usize>>,
}

impl SiteUniverse {
    /// Build a universe of `n` sites classified by `classifier`.
    ///
    /// Generated domains are guaranteed pairwise distinct: a colliding
    /// name would silently alias two site indices onto one registrable
    /// domain and shrink the effective universe, so collisions are
    /// disambiguated with a deterministic retry suffix. First-attempt
    /// names are unchanged, keeping existing seeds' universes stable.
    pub fn generate(seed_val: u64, n: usize, classifier: &Classifier) -> SiteUniverse {
        let mut domains = Vec::with_capacity(n);
        let mut topics = Vec::with_capacity(n);
        let mut by_topic: Vec<Vec<usize>> = vec![Vec::new(); TAXONOMY_SIZE + 1];
        let mut taken: std::collections::HashSet<String> = std::collections::HashSet::new();
        for i in 0..n {
            let prefix = seed::derive_idx(seed_val, i as u64) % 0x1000;
            let mut attempt = 0u32;
            let reg = loop {
                let name = if attempt == 0 {
                    format!("pop{prefix:03x}-{i}.com")
                } else {
                    format!("pop{prefix:03x}-{i}-r{attempt}.com")
                };
                let d = Domain::parse(&name).expect("valid generated domain");
                let reg = topics_net::psl::registrable_domain(&d);
                if taken.insert(reg.as_str().to_string()) {
                    break reg;
                }
                attempt += 1;
            };
            let t = match classifier.classify(&reg) {
                Classification::Topics(t) => t,
                Classification::Unclassifiable => Vec::new(),
            };
            for id in &t {
                by_topic[id.get() as usize].push(i);
            }
            domains.push(reg);
            topics.push(t);
        }
        SiteUniverse {
            domains,
            topics,
            by_topic,
        }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// The site at an index, as a Topics-API [`Site`].
    pub fn site(&self, idx: usize) -> Site {
        Site::of(&Url::https(self.domains[idx].clone(), "/"))
    }

    /// The topics of the site at `idx`.
    pub fn topics(&self, idx: usize) -> &[TopicId] {
        &self.topics[idx]
    }

    /// Sites carrying a given topic.
    pub fn sites_with_topic(&self, topic: TopicId) -> &[usize] {
        &self.by_topic[topic.get() as usize]
    }
}

/// One synthetic user.
pub struct User {
    /// Stable user id.
    pub id: usize,
    /// The user's interest topics.
    pub interests: Vec<TopicId>,
    /// The user's in-browser Topics engine.
    pub engine: TopicsEngine,
    seed: u64,
}

impl User {
    /// The sites this user visited in `epoch` (deterministic).
    pub fn visits_in_epoch(
        &self,
        universe: &SiteUniverse,
        epoch: u64,
        per_epoch: usize,
    ) -> Vec<usize> {
        let s = seed::derive_idx(seed::derive(self.seed, "visits"), epoch);
        let mut out = Vec::with_capacity(per_epoch);
        for k in 0..per_epoch {
            let pick = seed::derive_idx(s, k as u64);
            // 80% interest-driven, 20% random exploration.
            let idx = if seed::unit_f64(seed::derive(pick, "drive")) < 0.8 {
                let interest = self.interests[(pick % self.interests.len() as u64) as usize];
                let candidates = universe.sites_with_topic(interest);
                if candidates.is_empty() {
                    (pick % universe.len() as u64) as usize
                } else {
                    candidates[(seed::derive(pick, "cand") % candidates.len() as u64) as usize]
                }
            } else {
                (pick % universe.len() as u64) as usize
            };
            if !out.contains(&idx) {
                out.push(idx);
            }
        }
        out
    }
}

/// Generate `n` users sharing a classifier, and run their browsing for
/// `epochs` epochs so their Topics engines carry history.
pub fn generate_population(
    seed_val: u64,
    n: usize,
    universe: &SiteUniverse,
    classifier: Arc<Classifier>,
    epochs: u64,
    visits_per_epoch: usize,
) -> Vec<User> {
    generate_population_with_noise(
        seed_val,
        n,
        universe,
        classifier,
        epochs,
        visits_per_epoch,
        topics_browser::topics::NOISE_PROBABILITY,
    )
}

/// Like [`generate_population`] but with an explicit noise probability
/// for every user's Topics engine — the knob the `ablation_noise`
/// benchmark sweeps.
#[allow(clippy::too_many_arguments)]
pub fn generate_population_with_noise(
    seed_val: u64,
    n: usize,
    universe: &SiteUniverse,
    classifier: Arc<Classifier>,
    epochs: u64,
    visits_per_epoch: usize,
    noise_probability: f64,
) -> Vec<User> {
    let taxonomy = Taxonomy::global();
    let sensitive = taxonomy.sensitive_root();
    // Interests are drawn from topics that actually exist in the
    // universe (and are reasonably common there), so interest-driven
    // browsing has sites to land on.
    let available: Vec<TopicId> = (1..=TAXONOMY_SIZE as u16)
        .map(TopicId)
        .filter(|t| *t != sensitive && universe.sites_with_topic(*t).len() >= 2)
        .collect();
    assert!(
        !available.is_empty(),
        "universe too small: no topic covers ≥2 sites"
    );
    let mut users = Vec::with_capacity(n);
    for id in 0..n {
        let s = seed::derive_idx(seed::derive(seed_val, "user"), id as u64);
        let n_interests = 2 + (seed::derive(s, "k") % 3) as usize;
        let mut interests = Vec::with_capacity(n_interests);
        let mut attempt = 0u64;
        while interests.len() < n_interests && attempt < 64 {
            let t = available[(seed::derive_idx(seed::derive(s, "interest"), attempt)
                % available.len() as u64) as usize];
            attempt += 1;
            if !interests.contains(&t) {
                interests.push(t);
            }
        }
        let engine = TopicsEngine::new(classifier.clone(), s, true)
            .with_noise_probability(noise_probability);
        let mut user = User {
            id,
            interests,
            engine,
            seed: s,
        };
        for epoch in 0..epochs {
            let t = Timestamp::from_weeks(epoch);
            for idx in user.visits_in_epoch(universe, epoch, visits_per_epoch) {
                user.engine.record_visit(&universe.site(idx), t);
            }
        }
        users.push(user);
    }
    users
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SiteUniverse, Vec<User>) {
        let classifier = Arc::new(Classifier::new(5).with_unclassifiable_rate(0.0));
        let universe = SiteUniverse::generate(7, 400, &classifier);
        let users = generate_population(7, 30, &universe, classifier, 4, 20);
        (universe, users)
    }

    #[test]
    fn universe_indexes_topics() {
        let (u, _) = setup();
        assert_eq!(u.len(), 400);
        assert!(!u.is_empty());
        for i in 0..u.len() {
            for t in u.topics(i) {
                assert!(u.sites_with_topic(*t).contains(&i));
            }
        }
    }

    #[test]
    fn users_have_interests_and_history() {
        let (_, users) = setup();
        for user in &users {
            assert!((2..=4).contains(&user.interests.len()));
            assert_eq!(user.engine.epochs_with_data(), vec![0, 1, 2, 3]);
            assert!(user.engine.sites_in_epoch(0) > 5);
        }
    }

    #[test]
    fn generated_domains_are_unique_even_past_the_prefix_space() {
        // 8192 sites overflow the 0x1000 prefix space twice over; every
        // registrable domain must still be distinct or sites alias.
        let classifier = Classifier::new(3);
        let u = SiteUniverse::generate(3, 0x2000, &classifier);
        let mut names: Vec<String> = (0..u.len())
            .map(|i| u.site(i).domain().as_str().to_string())
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "colliding generated domains");
    }

    #[test]
    fn browsing_is_interest_skewed() {
        let (universe, users) = setup();
        // A user's visited sites should over-represent their interests.
        let user = &users[0];
        let visits = user.visits_in_epoch(&universe, 0, 20);
        let interest_hits = visits
            .iter()
            .filter(|&&i| {
                universe
                    .topics(i)
                    .iter()
                    .any(|t| user.interests.contains(t))
            })
            .count();
        assert!(
            interest_hits * 2 > visits.len(),
            "{interest_hits}/{} visits on-interest",
            visits.len()
        );
    }

    #[test]
    fn browsing_is_deterministic() {
        let (universe, users) = setup();
        let a = users[3].visits_in_epoch(&universe, 2, 20);
        let b = users[3].visits_in_epoch(&universe, 2, 20);
        assert_eq!(a, b);
        let c = users[3].visits_in_epoch(&universe, 3, 20);
        assert_ne!(a, c, "different epochs differ");
    }
}
