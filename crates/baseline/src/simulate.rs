//! Population-scale Topics simulation: k-anonymity and
//! re-identification curves over the arena.
//!
//! [`crate::reident`] demonstrates the attack mechanics at toy scale
//! with real per-user `TopicsEngine`s. This module re-runs the same
//! experiment against the [`crate::arena::PopulationArena`] so the
//! curves the paper's references report (k-anonymity of the exposed
//! top-5 sets, cross-context re-identification rate versus epochs
//! observed) can be measured at 10⁵–10⁶ users:
//!
//! * Two disjoint context panels (A and B) of embedded-caller sites
//!   each call the API once per user per site per collection epoch,
//!   reproducing the engine's answer path slot-for-slot: per-epoch
//!   uniform noise, pads, and the witness rule (a real topic is only
//!   returned if the caller observed the user on a matching site in
//!   that epoch).
//! * Returned topics accumulate into **sparse CSR profiles** — one
//!   `(topic, count)` run per user — instead of the dense
//!   `TAXONOMY_SIZE` histograms `reident.rs` uses.
//! * After every collection epoch the adversary links a user sample's
//!   context-B profiles against all context-A profiles by cosine,
//!   using per-profile norms computed once and per-topic **inverted
//!   candidate lists** so each query only touches users it shares a
//!   topic with — no all-pairs scan.
//!
//! Everything is a pure function of `(seed, config)`: collection
//!   fans out over user blocks through the same claim-queue pool as
//!   arena advancement, and ties break toward the smallest user id,
//!   so the CSV artefacts are byte-identical for any `--threads`.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use topics_net::seed;
use topics_taxonomy::{Taxonomy, TAXONOMY_SIZE};

use crate::arena::{
    self, run_jobs, slot_topic, user_seed, visits_for, PopulationArena, TopicBitset, SLOT_EMPTY,
    TOP_N,
};
use crate::population::SiteUniverse;
use topics_taxonomy::Classifier;

/// Users per parallel collection/attack block.
const BLOCK: usize = 2048;

/// How far back one API call reaches (the engine's epoch window).
const WINDOW_BACK: u64 = topics_browser::topics::EPOCH_WINDOW;

/// Simulation shape: everything the curves depend on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Root seed; every derived quantity flows from it.
    pub seed: u64,
    /// Population size.
    pub users: usize,
    /// Epochs of browsing to advance.
    pub epochs: u64,
    /// Sites in the browsable universe.
    pub sites: usize,
    /// Visit budget per user per epoch (pre-dedup).
    pub visits_per_epoch: usize,
    /// Sites per adversary context panel (two disjoint panels).
    pub context_sites: usize,
    /// Trailing collection window: the adversary observes the last
    /// `window` epochs.
    pub window: u64,
    /// Users sampled as re-identification queries per checkpoint.
    pub sample: usize,
    /// Per-slot uniform-noise probability (the API's is 0.05).
    pub noise: f64,
}

impl SimConfig {
    /// A config with the defaults the `simulate` subcommand documents.
    pub fn new(seed: u64, users: usize, epochs: u64) -> SimConfig {
        SimConfig {
            seed,
            users,
            epochs,
            sites: 5000,
            visits_per_epoch: 20,
            context_sites: 20,
            window: default_window(epochs),
            sample: 10_000,
            noise: topics_browser::topics::NOISE_PROBABILITY,
        }
    }

    /// Check the shape is simulatable.
    pub fn validate(&self) -> Result<(), String> {
        if self.users < 2 {
            return Err("simulate needs --users ≥ 2".into());
        }
        if self.epochs == 0 {
            return Err("simulate needs --epochs ≥ 1".into());
        }
        if self.visits_per_epoch == 0 {
            return Err("simulate needs --visits ≥ 1".into());
        }
        if self.context_sites == 0 {
            return Err("simulate needs --context ≥ 1".into());
        }
        if self.sites < self.context_sites * 2 {
            return Err(format!(
                "simulate needs --sites ≥ 2 × --context ({} < {})",
                self.sites,
                self.context_sites * 2
            ));
        }
        if self.window == 0 || self.window > self.epochs {
            return Err(format!(
                "simulate needs 1 ≤ --window ≤ --epochs (window {}, epochs {})",
                self.window, self.epochs
            ));
        }
        if self.sample == 0 {
            return Err("simulate needs --sample ≥ 1".into());
        }
        if !(0.0..=1.0).contains(&self.noise) {
            return Err(format!("--noise must be in [0, 1], got {}", self.noise));
        }
        Ok(())
    }
}

/// The default trailing observation window: everything after warm-up
/// (the engine answers from the previous [`WINDOW_BACK`] epochs, so
/// earlier collection sees mostly empty history), capped at 12 so
/// giant `--epochs` runs don't collect forever.
pub fn default_window(epochs: u64) -> u64 {
    epochs.saturating_sub(WINDOW_BACK).clamp(1, 12)
}

/// Aggregate API/attack counters, exposed as metrics by the CLI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// `browsing_topics` calls issued (user × context site × epoch).
    pub api_calls: u64,
    /// Topics returned across all calls, post-dedup.
    pub topics_returned: u64,
    /// Returned topics that were noise or padding.
    pub noised_topics: u64,
    /// Re-identification queries evaluated across all checkpoints.
    pub queries: u64,
    /// Queries whose best cosine match was the true user.
    pub correct: u64,
}

/// One epoch of the k-anonymity curve: users grouped by their exact
/// exposed (real) top-5 topic set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KanonRow {
    /// Epoch the groups are computed over.
    pub epoch: u64,
    /// Population size.
    pub users: u64,
    /// Distinct real-topic-set groups.
    pub groups: u64,
    /// Users alone in their group (k = 1: fully identified by the set).
    pub unique_users: u64,
    /// Group size of the median user (user-weighted).
    pub median_group: u64,
    /// Group size of the 10th-percentile user (user-weighted).
    pub p10_group: u64,
}

/// One checkpoint of the re-identification curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReidentRow {
    /// Collection epochs observed so far.
    pub epochs_observed: u64,
    /// Queries evaluated at this checkpoint.
    pub queries: u64,
    /// Correct top-1 matches.
    pub correct: u64,
    /// Candidate population size.
    pub population: u64,
}

impl ReidentRow {
    /// Fraction of queries linked to the right user.
    pub fn accuracy(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.correct as f64 / self.queries as f64
        }
    }

    /// Random-guessing baseline.
    pub fn random_floor(&self) -> f64 {
        if self.population == 0 {
            0.0
        } else {
            1.0 / self.population as f64
        }
    }
}

/// Everything a finished simulation produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRun {
    /// The config the run used.
    pub config: SimConfig,
    /// Per-epoch k-anonymity of the exposed top-5 sets.
    pub kanon: Vec<KanonRow>,
    /// Re-identification rate per collection checkpoint.
    pub reident: Vec<ReidentRow>,
    /// API/attack counters.
    pub stats: SimStats,
    /// Deduplicated site visits simulated.
    pub visits_total: u64,
    /// Arena heap footprint in bytes.
    pub arena_bytes: u64,
}

/// Build the site universe the population browses — derived from the
/// root seed, classified at the classifier's default unclassifiable
/// rate.
pub fn build_universe(cfg: &SimConfig) -> SiteUniverse {
    let s = seed::derive(cfg.seed, "sim-universe");
    SiteUniverse::generate(s, cfg.sites, &Classifier::new(s))
}

/// Advance the whole population — see [`PopulationArena::build`].
pub fn build_arena(
    cfg: &SimConfig,
    universe: &SiteUniverse,
    threads: usize,
) -> Result<PopulationArena, String> {
    PopulationArena::build(
        cfg.seed,
        cfg.users,
        cfg.epochs,
        cfg.visits_per_epoch,
        universe,
        threads,
    )
}

/// The per-epoch k-anonymity curve: group users by their exact set of
/// *real* (organic) top-5 topics — what an observer who strips the
/// uniform noise would learn — and report how identifying that set is.
pub fn kanon_curve(arena: &PopulationArena, threads: usize) -> Vec<KanonRow> {
    let out = Mutex::new(Vec::with_capacity(arena.epochs() as usize));
    let jobs: Vec<u64> = (0..arena.epochs()).collect();
    run_jobs(jobs, threads, |e| {
        // Real topic ids are ≤ 469 < 2^12 and arrive ranked; re-sorting
        // ascending makes the 12-bit-packed key canonical per set.
        let mut groups: HashMap<u64, u64> = HashMap::new();
        let mut ids = [0u16; TOP_N];
        for u in 0..arena.users() {
            let mut n = 0;
            for &v in arena.slot(e, u) {
                if let Some((t, true)) = slot_topic(v) {
                    ids[n] = t.get();
                    n += 1;
                }
            }
            ids[..n].sort_unstable();
            let mut key = 1u64;
            for &id in &ids[..n] {
                key = key << 12 | id as u64;
            }
            *groups.entry(key).or_insert(0) += 1;
        }
        let mut sizes: Vec<u64> = groups.values().copied().collect();
        sizes.sort_unstable();
        let users = arena.users() as u64;
        let unique_users = sizes.iter().filter(|&&s| s == 1).count() as u64;
        let row = KanonRow {
            epoch: e,
            users,
            groups: sizes.len() as u64,
            unique_users,
            median_group: weighted_percentile(&sizes, users, 50),
            p10_group: weighted_percentile(&sizes, users, 10),
        };
        out.lock().expect("kanon rows lock").push(row);
    });
    let mut rows = out.into_inner().expect("kanon rows lock");
    rows.sort_unstable_by_key(|r| r.epoch);
    rows
}

/// The group size of the `pct`-th percentile **user** (not group):
/// walk group sizes ascending until `pct`% of users are covered.
fn weighted_percentile(sorted_sizes: &[u64], users: u64, pct: u64) -> u64 {
    let threshold = (users * pct).div_ceil(100).max(1);
    let mut covered = 0u64;
    for &s in sorted_sizes {
        covered += s;
        if covered >= threshold {
            return s;
        }
    }
    sorted_sizes.last().copied().unwrap_or(0)
}

/// An adversary context panel: an ordered set of embedding sites.
struct ContextPanel {
    sites: Vec<u32>,
    member: Vec<bool>,
}

/// Draw two disjoint context panels from the universe.
fn pick_contexts(cfg: &SimConfig, n_sites: usize) -> (ContextPanel, ContextPanel) {
    let s = seed::derive(cfg.seed, "ctx");
    let want = cfg.context_sites * 2;
    let mut picked: Vec<u32> = Vec::with_capacity(want);
    let mut taken = vec![false; n_sites];
    let mut j = 0u64;
    while picked.len() < want {
        let idx = (seed::derive_idx(s, j) % n_sites as u64) as usize;
        j += 1;
        if !taken[idx] {
            taken[idx] = true;
            picked.push(idx as u32);
        }
    }
    let make = |sites: &[u32]| {
        let mut member = vec![false; n_sites];
        for &i in sites {
            member[i as usize] = true;
        }
        ContextPanel {
            sites: sites.to_vec(),
            member,
        }
    };
    (
        make(&picked[..cfg.context_sites]),
        make(&picked[cfg.context_sites..]),
    )
}

/// Sparse per-user topic profiles in CSR form: user `u`'s
/// `(topic, count)` run is `offsets[u]..offsets[u + 1]`, topics
/// ascending.
struct Csr {
    offsets: Vec<u64>,
    topics: Vec<u16>,
    counts: Vec<u16>,
}

impl Csr {
    fn empty(users: usize) -> Csr {
        Csr {
            offsets: vec![0; users + 1],
            topics: Vec::new(),
            counts: Vec::new(),
        }
    }

    fn row(&self, u: usize) -> (&[u16], &[u16]) {
        let at = self.offsets[u] as usize..self.offsets[u + 1] as usize;
        (&self.topics[at.clone()], &self.counts[at])
    }
}

/// Merge per-user sorted runs of `inc` into `cum` (two-pointer,
/// saturating counts).
fn merge_csr(cum: &Csr, inc: &Csr) -> Csr {
    let users = cum.offsets.len() - 1;
    let mut out = Csr {
        offsets: Vec::with_capacity(users + 1),
        topics: Vec::with_capacity(cum.topics.len() + inc.topics.len()),
        counts: Vec::with_capacity(cum.counts.len() + inc.counts.len()),
    };
    out.offsets.push(0);
    for u in 0..users {
        let (at, ac) = cum.row(u);
        let (bt, bc) = inc.row(u);
        let (mut i, mut j) = (0, 0);
        while i < at.len() || j < bt.len() {
            if j >= bt.len() || (i < at.len() && at[i] < bt[j]) {
                out.topics.push(at[i]);
                out.counts.push(ac[i]);
                i += 1;
            } else if i >= at.len() || bt[j] < at[i] {
                out.topics.push(bt[j]);
                out.counts.push(bc[j]);
                j += 1;
            } else {
                out.topics.push(at[i]);
                out.counts.push(ac[i].saturating_add(bc[j]));
                i += 1;
                j += 1;
            }
        }
        out.offsets.push(out.topics.len() as u64);
    }
    out
}

/// Counters one collection epoch produces.
#[derive(Default)]
struct CollectStats {
    api_calls: u64,
    topics_returned: u64,
    noised: u64,
}

/// One block's worth of freshly collected profiles.
struct BlockOut {
    first_user: usize,
    lens: Vec<u32>,
    topics: Vec<u16>,
    counts: Vec<u16>,
}

/// Run one collection epoch `e` for one context panel: every panel
/// site calls the API once per user, answers are reproduced
/// slot-for-slot from the arena (noise → replacement topic; real
/// topics gated on the witness rule; pads always returnable), and the
/// per-call engine dedup (smallest epoch wins per topic) is applied
/// before topics land in the epoch's CSR increment.
fn collect_epoch(
    cfg: &SimConfig,
    universe: &SiteUniverse,
    arena: &PopulationArena,
    ctx: &ContextPanel,
    e: u64,
    first: u64,
    threads: usize,
) -> (Csr, CollectStats) {
    let taxonomy = Taxonomy::global();
    let users = cfg.users;
    let outputs: Mutex<Vec<BlockOut>> = Mutex::new(Vec::with_capacity(users.div_ceil(BLOCK)));
    let api_calls = AtomicU64::new(0);
    let topics_returned = AtomicU64::new(0);
    let noised_total = AtomicU64::new(0);

    let jobs: Vec<usize> = (0..users.div_ceil(BLOCK)).collect();
    run_jobs(jobs, threads, |block| {
        let lo = block * BLOCK;
        let hi = (lo + BLOCK).min(users);
        let mut out = BlockOut {
            first_user: lo,
            lens: Vec::with_capacity(hi - lo),
            topics: Vec::new(),
            counts: Vec::new(),
        };
        let mut counts = vec![0u16; TAXONOMY_SIZE + 1];
        let mut touched: Vec<u16> = Vec::with_capacity(64);
        let mut visits: Vec<u32> = Vec::with_capacity(cfg.visits_per_epoch);
        let mut wit = [TopicBitset::new(); WINDOW_BACK as usize];
        let mut cand: Vec<(u16, u64, bool)> = Vec::with_capacity(WINDOW_BACK as usize);
        let (mut calls, mut returned, mut noised) = (0u64, 0u64, 0u64);
        for u in lo..hi {
            let us = user_seed(arena.seed(), u);
            let slot_root = seed::derive(us, "slot");
            // Witness sets: topics the panel observed the user on in
            // each reachable back-epoch (only epochs the adversary was
            // actually collecting in).
            for back in 1..=WINDOW_BACK {
                let w = &mut wit[back as usize - 1];
                w.clear();
                let Some(pe) = e.checked_sub(back) else {
                    continue;
                };
                if pe < first {
                    continue;
                }
                visits_for(
                    us,
                    arena.interests_of(u),
                    universe,
                    pe,
                    cfg.visits_per_epoch,
                    &mut visits,
                );
                for &si in &visits {
                    if ctx.member[si as usize] {
                        for &t in universe.topics(si as usize) {
                            w.insert(t);
                        }
                    }
                }
            }
            for &site in &ctx.sites {
                calls += 1;
                cand.clear();
                for back in 1..=WINDOW_BACK {
                    let Some(pe) = e.checked_sub(back) else {
                        continue;
                    };
                    let slot = arena.slot(pe, u);
                    if slot[0] == SLOT_EMPTY {
                        // Epoch with no classifiable browsing: the
                        // engine answers nothing, not even noise.
                        continue;
                    }
                    let slot_seed = seed::derive_idx(seed::derive_idx(slot_root, pe), site as u64);
                    if seed::unit_f64(seed::derive(slot_seed, "noise")) < cfg.noise {
                        let t = arena::random_returnable(
                            taxonomy,
                            seed::derive(slot_seed, "replacement"),
                        );
                        cand.push((t.get(), pe, true));
                        continue;
                    }
                    let idx = (seed::derive(slot_seed, "pick") % TOP_N as u64) as usize;
                    let Some((t, real)) = slot_topic(slot[idx]) else {
                        continue;
                    };
                    if real {
                        // Real topics need a witness: the caller saw
                        // the user on a matching site in that epoch.
                        if pe >= first && wit[back as usize - 1].contains(t) {
                            cand.push((t.get(), pe, false));
                        }
                    } else {
                        cand.push((t.get(), pe, true));
                    }
                }
                // Engine dedup: one result per topic, oldest epoch wins.
                cand.sort_unstable_by_key(|&(t, pe, _)| (t, pe));
                cand.dedup_by_key(|&mut (t, _, _)| t);
                for &(t, _, n) in cand.iter() {
                    returned += 1;
                    if n {
                        noised += 1;
                    }
                    if counts[t as usize] == 0 {
                        touched.push(t);
                    }
                    counts[t as usize] = counts[t as usize].saturating_add(1);
                }
            }
            touched.sort_unstable();
            out.lens.push(touched.len() as u32);
            for &t in &touched {
                out.topics.push(t);
                out.counts.push(counts[t as usize]);
                counts[t as usize] = 0;
            }
            touched.clear();
        }
        api_calls.fetch_add(calls, Ordering::Relaxed);
        topics_returned.fetch_add(returned, Ordering::Relaxed);
        noised_total.fetch_add(noised, Ordering::Relaxed);
        outputs.lock().expect("collect outputs lock").push(out);
    });

    let mut blocks = outputs.into_inner().expect("collect outputs lock");
    blocks.sort_unstable_by_key(|b| b.first_user);
    let mut csr = Csr {
        offsets: Vec::with_capacity(users + 1),
        topics: Vec::with_capacity(blocks.iter().map(|b| b.topics.len()).sum()),
        counts: Vec::with_capacity(blocks.iter().map(|b| b.counts.len()).sum()),
    };
    csr.offsets.push(0);
    for b in blocks {
        for len in b.lens {
            csr.offsets
                .push(csr.offsets.last().expect("non-empty offsets") + len as u64);
        }
        csr.topics.extend_from_slice(&b.topics);
        csr.counts.extend_from_slice(&b.counts);
    }
    (
        csr,
        CollectStats {
            api_calls: api_calls.into_inner(),
            topics_returned: topics_returned.into_inner(),
            noised: noised_total.into_inner(),
        },
    )
}

/// Per-topic inverted candidate lists over a CSR profile set:
/// `(user, count)` pairs for every user carrying the topic, users
/// ascending.
struct Inverted {
    offsets: Vec<u64>,
    user: Vec<u32>,
    count: Vec<u16>,
}

fn invert(csr: &Csr) -> Inverted {
    let mut sizes = vec![0u64; TAXONOMY_SIZE + 2];
    for &t in &csr.topics {
        sizes[t as usize + 1] += 1;
    }
    let mut offsets = sizes;
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut user = vec![0u32; csr.topics.len()];
    let mut count = vec![0u16; csr.topics.len()];
    let mut cursor = offsets.clone();
    for u in 0..csr.offsets.len() - 1 {
        let (ts, cs) = csr.row(u);
        for (t, c) in ts.iter().zip(cs) {
            let at = cursor[*t as usize] as usize;
            user[at] = u as u32;
            count[at] = *c;
            cursor[*t as usize] += 1;
        }
    }
    Inverted {
        offsets,
        user,
        count,
    }
}

/// Euclidean norm of every profile row.
fn norms(csr: &Csr) -> Vec<f64> {
    (0..csr.offsets.len() - 1)
        .map(|u| {
            csr.row(u)
                .1
                .iter()
                .map(|&c| c as f64 * c as f64)
                .sum::<f64>()
                .sqrt()
        })
        .collect()
}

/// Link each sampled user's context-B profile against all context-A
/// profiles; returns how many best-cosine matches hit the true user.
/// Only users sharing at least one topic with the query are scored
/// (via the inverted lists); ties break toward the smallest user id.
fn eval_checkpoint(cum_a: &Csr, cum_b: &Csr, sample: &[u32], threads: usize) -> u64 {
    let users = cum_a.offsets.len() - 1;
    let inv = invert(cum_a);
    let norm_a = norms(cum_a);
    let correct = AtomicU64::new(0);
    let q_blocks: Vec<usize> = (0..sample.len().div_ceil(512)).collect();
    run_jobs(q_blocks, threads, |qb| {
        let mut score = vec![0f64; users];
        let mut tag = vec![u32::MAX; users];
        let mut touched: Vec<u32> = Vec::with_capacity(4096);
        let mut hits = 0u64;
        for (qi, &q) in sample
            .iter()
            .enumerate()
            .skip(qb * 512)
            .take(512.min(sample.len() - qb * 512))
        {
            let qtag = qi as u32;
            touched.clear();
            let (qt, qc) = cum_b.row(q as usize);
            for (t, c) in qt.iter().zip(qc) {
                let at = inv.offsets[*t as usize] as usize..inv.offsets[*t as usize + 1] as usize;
                let qc = *c as f64;
                for (u, ac) in inv.user[at.clone()].iter().zip(&inv.count[at]) {
                    let u = *u as usize;
                    if tag[u] != qtag {
                        tag[u] = qtag;
                        score[u] = 0.0;
                        touched.push(u as u32);
                    }
                    score[u] += qc * *ac as f64;
                }
            }
            let mut best = f64::NEG_INFINITY;
            let mut best_u = u32::MAX;
            for &u in &touched {
                let s = score[u as usize] / norm_a[u as usize];
                if s > best || (s == best && u < best_u) {
                    best = s;
                    best_u = u;
                }
            }
            if best_u == q {
                hits += 1;
            }
        }
        correct.fetch_add(hits, Ordering::Relaxed);
    });
    correct.into_inner()
}

/// The deterministic user sample the adversary queries at every
/// checkpoint (partial Fisher–Yates; all users when `sample` covers
/// the population).
pub fn sample_users(cfg: &SimConfig) -> Vec<u32> {
    let n = cfg.users;
    if cfg.sample >= n {
        return (0..n as u32).collect();
    }
    let s = seed::derive(cfg.seed, "sample");
    let mut idx: Vec<u32> = (0..n as u32).collect();
    for i in 0..cfg.sample {
        let j = i + (seed::derive_idx(s, i as u64) % (n - i) as u64) as usize;
        idx.swap(i, j);
    }
    idx.truncate(cfg.sample);
    idx
}

/// The re-identification curve: collect both context panels epoch by
/// epoch over the trailing window, and after each epoch link the
/// sampled users' B-profiles against all A-profiles.
pub fn reident_curve(
    cfg: &SimConfig,
    universe: &SiteUniverse,
    arena: &PopulationArena,
    threads: usize,
) -> (Vec<ReidentRow>, SimStats) {
    let (ctx_a, ctx_b) = pick_contexts(cfg, universe.len());
    let sample = sample_users(cfg);
    let first = cfg.epochs - cfg.window;
    let mut cum_a = Csr::empty(cfg.users);
    let mut cum_b = Csr::empty(cfg.users);
    let mut stats = SimStats::default();
    let mut rows = Vec::with_capacity(cfg.window as usize);
    for e in first..cfg.epochs {
        for (ctx, cum) in [(&ctx_a, &mut cum_a), (&ctx_b, &mut cum_b)] {
            let (inc, cs) = collect_epoch(cfg, universe, arena, ctx, e, first, threads);
            *cum = merge_csr(cum, &inc);
            stats.api_calls += cs.api_calls;
            stats.topics_returned += cs.topics_returned;
            stats.noised_topics += cs.noised;
        }
        let correct = eval_checkpoint(&cum_a, &cum_b, &sample, threads);
        stats.queries += sample.len() as u64;
        stats.correct += correct;
        rows.push(ReidentRow {
            epochs_observed: e - first + 1,
            queries: sample.len() as u64,
            correct,
            population: cfg.users as u64,
        });
    }
    (rows, stats)
}

/// Run the whole simulation: universe → arena → curves.
pub fn run(cfg: &SimConfig, threads: usize) -> Result<SimRun, String> {
    cfg.validate()?;
    let universe = build_universe(cfg);
    let arena = build_arena(cfg, &universe, threads)?;
    let kanon = kanon_curve(&arena, threads);
    let (reident, stats) = reident_curve(cfg, &universe, &arena, threads);
    Ok(SimRun {
        config: *cfg,
        kanon,
        reident,
        stats,
        visits_total: arena.visits_total(),
        arena_bytes: arena.heap_bytes(),
    })
}

/// Render the k-anonymity curve as CSV.
pub fn kanon_csv(rows: &[KanonRow]) -> String {
    let mut out =
        String::from("epoch,users,groups,unique_users,frac_unique,median_group,p10_group\n");
    for r in rows {
        let frac = if r.users == 0 {
            0.0
        } else {
            r.unique_users as f64 / r.users as f64
        };
        writeln!(
            out,
            "{},{},{},{},{frac:.6},{},{}",
            r.epoch, r.users, r.groups, r.unique_users, r.median_group, r.p10_group
        )
        .expect("string write");
    }
    out
}

/// Render the re-identification curve as CSV.
pub fn reident_csv(rows: &[ReidentRow]) -> String {
    let mut out = String::from("epochs_observed,queries,correct,accuracy,random_floor\n");
    for r in rows {
        writeln!(
            out,
            "{},{},{},{:.6},{:.9}",
            r.epochs_observed,
            r.queries,
            r.correct,
            r.accuracy(),
            r.random_floor()
        )
        .expect("string write");
    }
    out
}

/// Render the human-readable simulation report (deterministic: no
/// wall times or host facts).
pub fn render_sim_report(run: &SimRun) -> String {
    let c = &run.config;
    let mut out = String::new();
    let _ = writeln!(out, "topics simulation report");
    let _ = writeln!(out, "========================");
    let _ = writeln!(
        out,
        "population: {} users × {} epochs ({} visits/epoch over {} sites), seed {}",
        c.users, c.epochs, c.visits_per_epoch, c.sites, c.seed
    );
    let _ = writeln!(
        out,
        "adversary: 2 × {}-site context panels, trailing window {} epochs, sample {} queries, noise {:.3}",
        c.context_sites, c.window, c.sample, c.noise
    );
    let _ = writeln!(
        out,
        "arena: {} bytes for {} simulated visits",
        run.arena_bytes, run.visits_total
    );
    let _ = writeln!(
        out,
        "api: {} calls, {} topics returned ({} noised, {:.4} noise share)",
        run.stats.api_calls,
        run.stats.topics_returned,
        run.stats.noised_topics,
        if run.stats.topics_returned == 0 {
            0.0
        } else {
            run.stats.noised_topics as f64 / run.stats.topics_returned as f64
        }
    );
    if let Some(k) = run.kanon.last() {
        let _ = writeln!(
            out,
            "k-anonymity (final epoch): {} groups, {} unique users ({:.4}), median group {}, p10 group {}",
            k.groups,
            k.unique_users,
            k.unique_users as f64 / k.users.max(1) as f64,
            k.median_group,
            k.p10_group
        );
    }
    if let Some(r) = run.reident.last() {
        let _ = writeln!(
            out,
            "re-identification (after {} epochs): {}/{} correct = {:.4} (random floor {:.6})",
            r.epochs_observed,
            r.correct,
            r.queries,
            r.accuracy(),
            r.random_floor()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SimConfig {
        SimConfig {
            sites: 300,
            visits_per_epoch: 15,
            context_sites: 10,
            sample: 200,
            ..SimConfig::new(11, 200, 6)
        }
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        assert!(small().validate().is_ok());
        assert!(SimConfig {
            users: 1,
            ..small()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            epochs: 0,
            ..small()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            visits_per_epoch: 0,
            ..small()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            context_sites: 0,
            ..small()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            sites: 19,
            ..small()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            window: 0,
            ..small()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            window: 7,
            ..small()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            sample: 0,
            ..small()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            noise: 1.5,
            ..small()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn default_window_tracks_epochs() {
        assert_eq!(default_window(1), 1);
        assert_eq!(default_window(4), 1);
        assert_eq!(default_window(8), 5);
        assert_eq!(default_window(30), 12);
        assert_eq!(default_window(100), 12);
    }

    #[test]
    fn run_is_identical_for_any_thread_count() {
        let cfg = small();
        let one = run(&cfg, 1).unwrap();
        let three = run(&cfg, 3).unwrap();
        assert_eq!(one, three);
        assert_eq!(kanon_csv(&one.kanon), kanon_csv(&three.kanon));
        assert_eq!(reident_csv(&one.reident), reident_csv(&three.reident));
    }

    #[test]
    fn run_depends_on_the_seed() {
        let a = run(&small(), 2).unwrap();
        let b = run(
            &SimConfig {
                seed: 12,
                ..small()
            },
            2,
        )
        .unwrap();
        assert_ne!(a.kanon, b.kanon);
        assert_ne!(a.reident, b.reident);
    }

    #[test]
    fn api_calls_reconcile_exactly() {
        let cfg = small();
        let r = run(&cfg, 2).unwrap();
        let expect = cfg.users as u64 * cfg.context_sites as u64 * cfg.window * 2;
        assert_eq!(r.stats.api_calls, expect);
        assert_eq!(
            r.stats.queries,
            cfg.sample.min(cfg.users) as u64 * cfg.window
        );
        assert_eq!(
            r.stats.correct,
            r.reident.iter().map(|row| row.correct).sum::<u64>()
        );
        assert!(r.stats.noised_topics <= r.stats.topics_returned);
        assert_eq!(r.kanon.len(), cfg.epochs as usize);
        assert_eq!(r.reident.len(), cfg.window as usize);
    }

    #[test]
    fn kanon_rows_are_internally_consistent() {
        let r = run(&small(), 2).unwrap();
        for k in &r.kanon {
            assert_eq!(k.users, 200);
            assert!(k.groups >= 1 && k.groups <= k.users);
            assert!(k.unique_users <= k.users);
            assert!(k.median_group >= 1);
            assert!(k.p10_group >= 1);
            assert!(k.p10_group <= k.median_group);
        }
    }

    #[test]
    fn attack_beats_the_random_floor() {
        // A stronger adversary than `small()`: wider panels and a
        // longer window, since the witness rule keeps single-epoch
        // 10-site panels close to noise-only.
        let cfg = SimConfig {
            sites: 300,
            visits_per_epoch: 20,
            context_sites: 40,
            sample: 200,
            ..SimConfig::new(11, 200, 9)
        };
        let r = run(&cfg, 4).unwrap();
        let last = r.reident.last().unwrap();
        // 200 users, stable interests: after the full window the
        // linker should do far better than 1/200 random guessing.
        // (The witness rule caps how far: only topics carried by some
        // panel site are ever returned as real.)
        assert!(
            last.accuracy() > 8.0 * last.random_floor(),
            "accuracy {} vs floor {}",
            last.accuracy(),
            last.random_floor()
        );
        // And accuracy should not degrade with more observation.
        assert!(r.reident.last().unwrap().correct >= r.reident[0].correct / 2);
    }

    #[test]
    fn merge_csr_merges_sorted_runs() {
        let a = Csr {
            offsets: vec![0, 2, 2],
            topics: vec![3, 9 /* user 1 empty */],
            counts: vec![1, 2],
        };
        let b = Csr {
            offsets: vec![0, 2, 3],
            topics: vec![3, 5, 7],
            counts: vec![4, 1, 9],
        };
        let m = merge_csr(&a, &b);
        assert_eq!(m.offsets, vec![0, 3, 4]);
        assert_eq!(m.topics, vec![3, 5, 9, 7]);
        assert_eq!(m.counts, vec![5, 1, 2, 9]);
    }

    #[test]
    fn sample_users_is_a_deterministic_subset() {
        let cfg = SimConfig {
            sample: 50,
            ..small()
        };
        let a = sample_users(&cfg);
        let b = sample_users(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 50, "samples are distinct users");
        assert!(dedup.iter().all(|&u| (u as usize) < cfg.users));
        let all = sample_users(&SimConfig {
            sample: 500,
            ..small()
        });
        assert_eq!(all.len(), 200, "sample beyond population takes everyone");
    }

    #[test]
    fn csv_renders_with_headers() {
        let r = run(&small(), 2).unwrap();
        let k = kanon_csv(&r.kanon);
        assert!(
            k.starts_with("epoch,users,groups,unique_users,frac_unique,median_group,p10_group\n")
        );
        assert_eq!(k.lines().count(), 1 + r.kanon.len());
        let re = reident_csv(&r.reident);
        assert!(re.starts_with("epochs_observed,queries,correct,accuracy,random_floor\n"));
        assert_eq!(re.lines().count(), 1 + r.reident.len());
        let report = render_sim_report(&r);
        assert!(report.contains("200 users × 6 epochs"));
        assert!(report.contains("re-identification"));
    }
}
