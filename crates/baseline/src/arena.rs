//! Population-wide epoch-major topic-history arena.
//!
//! The toy population in [`crate::population`] keeps one
//! `TopicsEngine` per user — hash maps of hash maps of `Domain`
//! strings. That is faithful but allocation-bound: a million users
//! over thirty epochs is tens of millions of small heap objects.
//! This module stores the whole population in three flat buffers so
//! the same world fits in a few hundred megabytes and advances in
//! parallel:
//!
//! * `top5` — epoch-major packed slots: the ranked top-[`TOP_N`]
//!   topics of `(epoch e, user u)` live at
//!   `((e * users + u) * TOP_N)..+TOP_N`, one `u16` per topic (low
//!   bits the topic id, bit 15 set when the topic is real rather than
//!   padding). 10 bytes per user-epoch: a 1M-user × 30-epoch world is
//!   300 MB, laid out so one epoch is one contiguous stripe.
//! * `seen` — one fixed-size taxonomy bitset ([`BITSET_WORDS`] ×
//!   `u64`) per user: every topic that ever entered the user's
//!   per-epoch history.
//! * `interests` — up to [`MAX_INTERESTS`] packed topic ids per user
//!   (`0` marks an empty slot; real topic ids start at 1).
//!
//! ## Seeding contract
//!
//! Every per-user quantity is a pure function of
//! `(sim_seed, user_id, epoch)`:
//!
//! ```text
//! user_seed(u)        = derive_idx(derive(sim_seed, "sim-user"), u)
//! visits(u, e)        = f(derive_idx(derive(user_seed, "visits"), e))
//! pad topics (u, e)   = f(derive_idx(derive(user_seed, "pad"), e ^ (attempt << 32)))
//! answer slot (u,e,s) = f(derive_idx(derive_idx(derive(user_seed, "slot"), e), s))
//! ```
//!
//! Nothing depends on scheduling: epoch advancement distributes
//! fixed user blocks over a scoped worker pool (workers claim blocks
//! through a shared cursor, the same claim pattern as the crawler's
//! probe pool), and each block owns its output slices. The arena
//! bytes are therefore identical for any `--threads`, which the
//! simulation determinism suite asserts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use topics_net::seed;
use topics_taxonomy::{Taxonomy, TopicId, TAXONOMY_SIZE};

use crate::population::SiteUniverse;

/// Topics kept per user-epoch slot (mirrors
/// [`topics_browser::topics::TOP_N`]).
pub const TOP_N: usize = topics_browser::topics::TOP_N;
/// Words per fixed-size taxonomy bitset: topic ids 1..=469 plus the
/// unused id 0, rounded up to whole `u64`s.
pub const BITSET_WORDS: usize = (TAXONOMY_SIZE + 1).div_ceil(64);
/// Interest slots per user; the generator draws 2–4 interests.
pub const MAX_INTERESTS: usize = 4;
/// Marker for a slot with no topic: an epoch in which the user's
/// visits produced no classifiable site at all (the engine equivalent
/// is an epoch whose `site_topics` is empty, which answers nothing).
pub const SLOT_EMPTY: u16 = u16::MAX;

/// Bit 15 marks a slot topic as real (organic) rather than padding.
/// Topic ids fit in 9 bits, so the flag never collides.
const REAL_BIT: u16 = 1 << 15;

/// Users per parallel work block. Big enough that the queue lock is
/// cold (a 1M-user epoch is ~250 claims), small enough to load-balance
/// the tail.
const BLOCK_USERS: usize = 4096;

/// The per-user seed every simulated quantity derives from — the
/// `(campaign_seed, user_id)` half of the seeding contract.
#[inline]
pub fn user_seed(sim_seed: u64, user: usize) -> u64 {
    seed::derive_idx(seed::derive(sim_seed, "sim-user"), user as u64)
}

/// Unpack one arena slot: `None` for [`SLOT_EMPTY`], otherwise the
/// topic and whether it was real (`true`) or padding (`false`).
#[inline]
pub fn slot_topic(v: u16) -> Option<(TopicId, bool)> {
    if v == SLOT_EMPTY {
        None
    } else {
        Some((TopicId(v & !REAL_BIT), v & REAL_BIT != 0))
    }
}

/// A deterministic uniformly random topic outside the sensitive
/// subtree — the same padding/noise draw as
/// `topics_browser::topics`' private helper.
pub(crate) fn random_returnable(taxonomy: &Taxonomy, s: u64) -> TopicId {
    let sensitive = taxonomy.sensitive_root();
    let size = taxonomy.len() as u64;
    let mut attempt = 0u64;
    loop {
        let id = TopicId((seed::derive_idx(s, attempt) % size) as u16 + 1);
        if id != sensitive {
            return id;
        }
        attempt += 1;
    }
}

/// A fixed-size topic membership set over the taxonomy — 64 bytes,
/// no heap, `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopicBitset {
    words: [u64; BITSET_WORDS],
}

impl TopicBitset {
    /// The empty set.
    pub const fn new() -> TopicBitset {
        TopicBitset {
            words: [0; BITSET_WORDS],
        }
    }

    /// Add a topic.
    #[inline]
    pub fn insert(&mut self, t: TopicId) {
        let id = t.get() as usize;
        self.words[id / 64] |= 1 << (id % 64);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, t: TopicId) -> bool {
        let id = t.get() as usize;
        self.words[id / 64] & (1 << (id % 64)) != 0
    }

    /// Remove every topic.
    pub fn clear(&mut self) {
        self.words = [0; BITSET_WORDS];
    }

    /// Number of topics in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no topic is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

impl Default for TopicBitset {
    fn default() -> TopicBitset {
        TopicBitset::new()
    }
}

/// The deterministic visit list of `(user_seed, epoch)` — the same
/// 80% interest-driven / 20% exploration mix as
/// [`crate::population::User::visits_in_epoch`], deduplicated, writing
/// into `out` so the caller can reuse one buffer across users.
///
/// Both epoch advancement and adversary profile collection call this;
/// having a single definition is what makes the witness filter agree
/// with the recorded history.
pub fn visits_for(
    user_seed: u64,
    interests: &[u16],
    universe: &SiteUniverse,
    epoch: u64,
    per_epoch: usize,
    out: &mut Vec<u32>,
) {
    out.clear();
    let s = seed::derive_idx(seed::derive(user_seed, "visits"), epoch);
    let n_sites = universe.len() as u64;
    for k in 0..per_epoch {
        let pick = seed::derive_idx(s, k as u64);
        let idx = if !interests.is_empty() && seed::unit_f64(seed::derive(pick, "drive")) < 0.8 {
            let interest = TopicId(interests[(pick % interests.len() as u64) as usize]);
            let candidates = universe.sites_with_topic(interest);
            if candidates.is_empty() {
                (pick % n_sites) as u32
            } else {
                candidates[(seed::derive(pick, "cand") % candidates.len() as u64) as usize] as u32
            }
        } else {
            (pick % n_sites) as u32
        };
        if !out.contains(&idx) {
            out.push(idx);
        }
    }
}

/// The population-wide topic-history arena. See the module docs for
/// the layout and seeding contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopulationArena {
    seed: u64,
    users: usize,
    epochs: u64,
    visits_per_epoch: usize,
    top5: Vec<u16>,
    seen: Vec<u64>,
    interests: Vec<u16>,
    visits_total: u64,
}

impl PopulationArena {
    /// Build the arena: draw every user's interests, then advance all
    /// `epochs` epochs of browsing over `threads` workers. The result
    /// is byte-identical for any `threads` value.
    pub fn build(
        sim_seed: u64,
        users: usize,
        epochs: u64,
        visits_per_epoch: usize,
        universe: &SiteUniverse,
        threads: usize,
    ) -> Result<PopulationArena, String> {
        if users == 0 || epochs == 0 || visits_per_epoch == 0 {
            return Err("population needs users ≥ 1, epochs ≥ 1, visits ≥ 1".into());
        }
        let slots = users
            .checked_mul(epochs as usize)
            .and_then(|n| n.checked_mul(TOP_N))
            .ok_or("users × epochs overflows the arena")?;
        let taxonomy = Taxonomy::global();
        let sensitive = taxonomy.sensitive_root();
        // Interests come from topics that actually cover ≥ 2 universe
        // sites (same rule as `generate_population`), so interest-driven
        // browsing has sites to land on.
        let available: Vec<u16> = (1..=TAXONOMY_SIZE as u16)
            .filter(|&t| t != sensitive.get() && universe.sites_with_topic(TopicId(t)).len() >= 2)
            .collect();
        if available.is_empty() {
            return Err("universe too small: no topic covers ≥ 2 sites".into());
        }

        let mut top5 = vec![SLOT_EMPTY; slots];
        let mut seen = vec![0u64; users * BITSET_WORDS];
        let mut interests = vec![0u16; users * MAX_INTERESTS];
        let visits_total = AtomicU64::new(0);

        // Pass 1: interests. Blocks only touch their own slice, so the
        // claim order cannot leak into the output.
        {
            let jobs: Vec<(usize, &mut [u16])> = interests
                .chunks_mut(BLOCK_USERS * MAX_INTERESTS)
                .enumerate()
                .collect();
            run_jobs(jobs, threads, |(block, chunk)| {
                for local in 0..chunk.len() / MAX_INTERESTS {
                    let u = block * BLOCK_USERS + local;
                    let s = user_seed(sim_seed, u);
                    let n_interests = 2 + (seed::derive(s, "k") % 3) as usize;
                    let out = &mut chunk[local * MAX_INTERESTS..][..MAX_INTERESTS];
                    let mut picked = 0;
                    let mut attempt = 0u64;
                    while picked < n_interests && attempt < 64 {
                        let t = available[(seed::derive_idx(seed::derive(s, "interest"), attempt)
                            % available.len() as u64)
                            as usize];
                        attempt += 1;
                        if !out[..picked].contains(&t) {
                            out[picked] = t;
                            picked += 1;
                        }
                    }
                }
            });
        }

        // Pass 2: epoch advancement. Epochs run in order (the clock is
        // sequential); within an epoch the user stripe is split into
        // blocks and each block's top-5 slots and seen-bitset words are
        // owned by exactly one claim.
        for e in 0..epochs {
            let stripe = &mut top5[(e as usize) * users * TOP_N..][..users * TOP_N];
            let jobs: Vec<(usize, &mut [u16], &mut [u64])> = stripe
                .chunks_mut(BLOCK_USERS * TOP_N)
                .zip(seen.chunks_mut(BLOCK_USERS * BITSET_WORDS))
                .enumerate()
                .map(|(block, (slots, seen))| (block, slots, seen))
                .collect();
            run_jobs(jobs, threads, |(block, slot_chunk, seen_chunk)| {
                let mut counts = vec![0u16; TAXONOMY_SIZE + 1];
                let mut touched: Vec<u16> = Vec::with_capacity(64);
                let mut visits: Vec<u32> = Vec::with_capacity(visits_per_epoch);
                let mut block_visits = 0u64;
                for local in 0..slot_chunk.len() / TOP_N {
                    let u = block * BLOCK_USERS + local;
                    let us = user_seed(sim_seed, u);
                    let ints = trimmed(interests_ref(&interests, u));
                    visits_for(us, ints, universe, e, visits_per_epoch, &mut visits);
                    block_visits += visits.len() as u64;

                    touched.clear();
                    for &si in &visits {
                        for t in universe.topics(si as usize) {
                            let id = t.get();
                            if counts[id as usize] == 0 {
                                touched.push(id);
                            }
                            counts[id as usize] += 1;
                        }
                    }
                    let slot = &mut slot_chunk[local * TOP_N..][..TOP_N];
                    if touched.is_empty() {
                        slot.fill(SLOT_EMPTY);
                        continue;
                    }
                    // Rank by contributing-site count descending, topic
                    // id ascending — the engine's `top5` order.
                    touched.sort_unstable_by(|a, b| {
                        counts[*b as usize].cmp(&counts[*a as usize]).then(a.cmp(b))
                    });
                    let n_real = touched.len().min(TOP_N);
                    for k in 0..n_real {
                        slot[k] = touched[k] | REAL_BIT;
                    }
                    // Pad to TOP_N with deterministic random returnable
                    // topics, exactly as the engine pads a thin epoch.
                    let pad_seed = seed::derive(us, "pad");
                    let mut k = n_real;
                    let mut attempt = 0u64;
                    while k < TOP_N {
                        let pick = random_returnable(
                            taxonomy,
                            seed::derive_idx(pad_seed, e ^ (attempt << 32)),
                        )
                        .get();
                        attempt += 1;
                        if !slot[..k].iter().any(|&v| v & !REAL_BIT == pick) {
                            slot[k] = pick;
                            k += 1;
                        }
                        if attempt > 64 {
                            slot[k..].fill(SLOT_EMPTY); // defensive; cannot happen with 468 returnable topics
                            break;
                        }
                    }
                    let sw = &mut seen_chunk[local * BITSET_WORDS..][..BITSET_WORDS];
                    for &id in &touched {
                        sw[id as usize / 64] |= 1 << (id % 64);
                        counts[id as usize] = 0;
                    }
                }
                visits_total.fetch_add(block_visits, Ordering::Relaxed);
            });
        }

        Ok(PopulationArena {
            seed: sim_seed,
            users,
            epochs,
            visits_per_epoch,
            top5,
            seen,
            interests,
            visits_total: visits_total.into_inner(),
        })
    }

    /// The simulation seed the arena was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Population size.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Epochs advanced.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Visit budget per user-epoch (before dedup).
    pub fn visits_per_epoch(&self) -> usize {
        self.visits_per_epoch
    }

    /// Total deduplicated site visits simulated across the population.
    pub fn visits_total(&self) -> u64 {
        self.visits_total
    }

    /// The packed top-[`TOP_N`] slot of `(epoch, user)`.
    #[inline]
    pub fn slot(&self, epoch: u64, user: usize) -> &[u16] {
        let at = ((epoch as usize) * self.users + user) * TOP_N;
        &self.top5[at..at + TOP_N]
    }

    /// The user's interests (2–4 packed topic ids).
    pub fn interests_of(&self, user: usize) -> &[u16] {
        trimmed(interests_ref(&self.interests, user))
    }

    /// The user's observed-topic bitset words.
    pub fn seen_of(&self, user: usize) -> &[u64] {
        &self.seen[user * BITSET_WORDS..][..BITSET_WORDS]
    }

    /// Distinct topics that ever entered the user's history.
    pub fn seen_count(&self, user: usize) -> u32 {
        self.seen_of(user).iter().map(|w| w.count_ones()).sum()
    }

    /// Heap footprint of the three buffers, in bytes — what the
    /// simulate report and the ledger call the arena size.
    pub fn heap_bytes(&self) -> u64 {
        (self.top5.len() * 2 + self.seen.len() * 8 + self.interests.len() * 2) as u64
    }
}

#[inline]
fn interests_ref(packed: &[u16], user: usize) -> &[u16] {
    &packed[user * MAX_INTERESTS..][..MAX_INTERESTS]
}

/// Drop trailing empty (`0`) interest slots.
#[inline]
fn trimmed(slots: &[u16]) -> &[u16] {
    let n = slots.iter().position(|&t| t == 0).unwrap_or(slots.len());
    &slots[..n]
}

/// Distribute pre-chunked mutable work items over a scoped worker
/// pool. Workers claim jobs through a shared cursor (a locked
/// iterator — the claim-by-index pattern the crawler's probe pool
/// proves out), so scheduling is racy but every job owns its output
/// slices: the result bytes cannot depend on `threads`.
pub(crate) fn run_jobs<T: Send>(jobs: Vec<T>, threads: usize, work: impl Fn(T) + Sync) {
    let threads = threads.max(1).min(jobs.len().max(1));
    if threads <= 1 {
        for job in jobs {
            work(job);
        }
        return;
    }
    let queue = Mutex::new(jobs.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = queue.lock().expect("job queue lock").next();
                let Some(job) = job else { break };
                work(job);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use topics_taxonomy::Classifier;

    fn universe() -> SiteUniverse {
        let classifier = Classifier::new(5).with_unclassifiable_rate(0.0);
        SiteUniverse::generate(5, 300, &classifier)
    }

    #[test]
    fn bitset_inserts_and_counts() {
        let mut s = TopicBitset::new();
        assert!(s.is_empty());
        s.insert(TopicId(1));
        s.insert(TopicId(64));
        s.insert(TopicId(469));
        s.insert(TopicId(469));
        assert_eq!(s.len(), 3);
        assert!(s.contains(TopicId(64)));
        assert!(!s.contains(TopicId(65)));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(TopicBitset::default(), TopicBitset::new());
    }

    #[test]
    fn slot_packing_roundtrips() {
        assert_eq!(slot_topic(SLOT_EMPTY), None);
        assert_eq!(slot_topic(7 | REAL_BIT), Some((TopicId(7), true)));
        assert_eq!(slot_topic(7), Some((TopicId(7), false)));
    }

    #[test]
    fn arena_is_byte_identical_for_any_thread_count() {
        let u = universe();
        let one = PopulationArena::build(11, 500, 6, 15, &u, 1).unwrap();
        let four = PopulationArena::build(11, 500, 6, 15, &u, 4).unwrap();
        let eight = PopulationArena::build(11, 500, 6, 15, &u, 8).unwrap();
        assert_eq!(one, four);
        assert_eq!(four, eight);
        assert!(one.visits_total() > 0);
    }

    #[test]
    fn arena_depends_on_the_seed() {
        let u = universe();
        let a = PopulationArena::build(11, 200, 4, 15, &u, 2).unwrap();
        let b = PopulationArena::build(12, 200, 4, 15, &u, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn slots_hold_five_unique_ranked_topics() {
        let u = universe();
        let arena = PopulationArena::build(23, 120, 5, 20, &u, 3).unwrap();
        let sensitive = Taxonomy::global().sensitive_root();
        for user in 0..arena.users() {
            assert!((2..=MAX_INTERESTS).contains(&arena.interests_of(user).len()));
            for e in 0..arena.epochs() {
                let slot = arena.slot(e, user);
                let topics: Vec<u16> = slot
                    .iter()
                    .filter_map(|&v| slot_topic(v))
                    .map(|(t, _)| t.get())
                    .collect();
                assert_eq!(topics.len(), TOP_N, "pads fill every non-empty epoch");
                let mut dedup = topics.clone();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(dedup.len(), TOP_N, "no duplicate topics in a slot");
                assert!(!topics.contains(&sensitive.get()));
                // Real topics precede pads, and every real topic is in
                // the user's seen bitset.
                let mut seen_pad = false;
                for &v in slot {
                    let (t, real) = slot_topic(v).unwrap();
                    if real {
                        assert!(!seen_pad, "real topic after a pad");
                        assert!(
                            arena.seen_of(user)[t.get() as usize / 64] & (1 << (t.get() % 64)) != 0
                        );
                    } else {
                        seen_pad = true;
                    }
                }
            }
        }
    }

    #[test]
    fn real_topics_match_an_independent_ranking() {
        let u = universe();
        let arena = PopulationArena::build(31, 60, 4, 25, &u, 2).unwrap();
        for user in [0usize, 17, 59] {
            for e in 0..4u64 {
                let mut visits = Vec::new();
                visits_for(
                    user_seed(31, user),
                    arena.interests_of(user),
                    &u,
                    e,
                    25,
                    &mut visits,
                );
                let mut counts: HashMap<u16, usize> = HashMap::new();
                for &si in &visits {
                    for t in u.topics(si as usize) {
                        *counts.entry(t.get()).or_insert(0) += 1;
                    }
                }
                let mut ranked: Vec<(u16, usize)> = counts.into_iter().collect();
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let expect: Vec<u16> = ranked.into_iter().take(TOP_N).map(|(t, _)| t).collect();
                let reals: Vec<u16> = arena
                    .slot(e, user)
                    .iter()
                    .filter_map(|&v| slot_topic(v))
                    .filter(|(_, real)| *real)
                    .map(|(t, _)| t.get())
                    .collect();
                assert_eq!(reals, expect, "user {user} epoch {e}");
            }
        }
    }

    #[test]
    fn build_rejects_degenerate_configs() {
        let u = universe();
        assert!(PopulationArena::build(1, 0, 3, 10, &u, 1).is_err());
        assert!(PopulationArena::build(1, 10, 0, 10, &u, 1).is_err());
        assert!(PopulationArena::build(1, 10, 3, 0, &u, 1).is_err());
        let empty = SiteUniverse::generate(9, 0, &Classifier::new(9));
        assert!(PopulationArena::build(1, 10, 3, 10, &empty, 1).is_err());
    }

    #[test]
    fn heap_bytes_counts_the_three_buffers() {
        let u = universe();
        let arena = PopulationArena::build(3, 100, 4, 10, &u, 2).unwrap();
        let expect = (100 * 4 * TOP_N * 2) + (100 * BITSET_WORDS * 8) + (100 * MAX_INTERESTS * 2);
        assert_eq!(arena.heap_bytes(), expect as u64);
    }
}
