//! World construction, campaign execution, and the evaluation bundle.

use crate::config::LabConfig;
use topics_analysis::anomalous::{anomalous_stats, render_anomalous, AnomalousStats};
use topics_analysis::calltypes::{call_type_mix, render_call_types, CallTypeMix};
use topics_analysis::cmp_usage::{fig7, render_fig7, Fig7};
use topics_analysis::concentration::{concentration, render_concentration, Concentration};
use topics_analysis::dataset::{DatasetId, Datasets};
use topics_analysis::figures::{
    fig2, fig3, fig5, fig6, render_fig2, render_fig3, render_fig5, render_fig6, GeoRow,
    PresenceRow, QuestionableRow,
};
use topics_analysis::report::pct;
use topics_analysis::table1::{table1, Table1};
use topics_analysis::timeline::{render_timeline, timeline, Timeline};
use topics_crawler::campaign::{run_campaign_observed, CampaignConfig};
use topics_crawler::metrics::tally_outcome;
use topics_crawler::record::CampaignOutcome;
use topics_obs::{MetricsRegistry, MetricsSnapshot, Obs};
use topics_webgen::World;

/// A built world plus a campaign configuration, ready to run.
pub struct Lab {
    /// The synthetic web.
    pub world: World,
    /// The crawl parameters.
    pub campaign: CampaignConfig,
}

/// A finished campaign: the outcome plus the metrics snapshot taken
/// right after the crawl. Derefs to [`CampaignOutcome`], so existing
/// call sites keep working unchanged.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The measurement records.
    pub outcome: CampaignOutcome,
    /// Snapshot of every metric the run produced (live crawl series
    /// plus the authoritative tally).
    pub metrics: MetricsSnapshot,
}

impl std::ops::Deref for CampaignRun {
    type Target = CampaignOutcome;
    fn deref(&self) -> &CampaignOutcome {
        &self.outcome
    }
}

/// The tally-only metrics snapshot of an outcome (a fresh registry fed
/// through [`tally_outcome`]). This is what the `topics-lab metrics`
/// subcommand re-renders from a saved `campaign.json` — by construction
/// it reconciles with the §2.4 report numbers.
pub fn metrics_snapshot_of(outcome: &CampaignOutcome) -> MetricsSnapshot {
    let registry = MetricsRegistry::new();
    tally_outcome(outcome, &registry);
    registry.snapshot()
}

impl Lab {
    /// Generate the world for a configuration.
    pub fn new(config: LabConfig) -> Lab {
        Lab {
            world: World::generate(config.world),
            campaign: config.campaign,
        }
    }

    /// Run the measurement campaign with a private observability handle
    /// and return the outcome together with its metrics snapshot.
    pub fn run(&self) -> CampaignRun {
        self.run_observed(&Obs::new())
    }

    /// Run the measurement campaign against a caller-supplied
    /// observability handle (the CLI passes one wired to stderr and the
    /// JSONL sink). Live series fill `obs.metrics` while the crawl runs;
    /// the authoritative tally is added before the snapshot is taken.
    pub fn run_observed(&self, obs: &Obs) -> CampaignRun {
        #[cfg(feature = "mem-regression-fixture")]
        let fixture_before = topics_obs::alloc::global_stats().alloc_bytes;
        let outcome =
            run_campaign_observed(&self.world, &self.campaign, Some(obs), |done, total| {
                obs.events.info(
                    "progress",
                    vec![
                        ("done".to_owned(), done.into()),
                        ("total".to_owned(), total.into()),
                    ],
                );
            });
        tally_outcome(&outcome, &obs.metrics);
        // CI-only regression fixture: double the run's heap footprint by
        // allocating ballast equal to what the campaign itself used, so
        // the perf-smoke memory gate demonstrably fires.
        #[cfg(feature = "mem-regression-fixture")]
        topics_obs::alloc::ballast(
            topics_obs::alloc::global_stats()
                .alloc_bytes
                .saturating_sub(fixture_before),
        );
        CampaignRun {
            metrics: obs.metrics.snapshot(),
            outcome,
        }
    }
}

/// Aggregate §2.4 statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStats {
    /// Sites attempted.
    pub attempted: usize,
    /// |D_BA| — successfully visited.
    pub visited: usize,
    /// |D_AA| — banner accepted, second visit done.
    pub accepted: usize,
    /// Distinct third parties across D_BA.
    pub unique_third_parties: usize,
    /// Share of D_AA sites with ≥1 legitimate Topics call (§3's 45%).
    pub legitimate_coverage_aa: f64,
    /// Median simulated page-load time across D_BA (latency model).
    pub median_page_load_ms: u64,
    /// Per-outcome site counts: `complete + degraded + failed ==
    /// attempted`. Degraded is always 0 without a fault profile.
    pub outcomes: topics_crawler::record::OutcomeCounts,
}

/// Everything the paper's evaluation section reports, computed from one
/// campaign.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// §2.4 aggregates.
    pub stats: CampaignStats,
    /// Table 1.
    pub table1: Table1,
    /// Figure 2 rows (top 15).
    pub fig2: Vec<PresenceRow>,
    /// Figure 3 rows (top 15 by enabled fraction).
    pub fig3: Vec<PresenceRow>,
    /// Figure 5 rows (top 15 questionable CPs).
    pub fig5: Vec<QuestionableRow>,
    /// Figure 6 rows (top 4 questionable CPs by region).
    pub fig6: Vec<GeoRow>,
    /// Figure 7.
    pub fig7: Fig7,
    /// §4 anomalous statistics over D_AA.
    pub anomalous: AnomalousStats,
    /// Call-type mix over D_AA (§2.2).
    pub call_types: CallTypeMix,
    /// Concentration of legitimate call volume over D_AA.
    pub concentration: Concentration,
    /// §3 enrolment timeline.
    pub timeline: Timeline,
}

/// Compute the full evaluation from a campaign outcome.
pub fn evaluate(outcome: &CampaignOutcome) -> Evaluation {
    let ds = Datasets::new(outcome);
    let fig5_rows = fig5(&ds, 15);
    let top4: Vec<_> = fig5_rows.iter().take(4).map(|r| r.cp.clone()).collect();
    Evaluation {
        stats: CampaignStats {
            attempted: outcome.sites.len(),
            visited: outcome.visited_count(),
            accepted: outcome.accepted_count(),
            unique_third_parties: ds.unique_third_parties(),
            legitimate_coverage_aa: ds.legitimate_coverage(DatasetId::AfterAccept),
            median_page_load_ms: ds.median_visit_duration_ms(DatasetId::BeforeAccept),
            outcomes: ds.outcome_counts(),
        },
        table1: table1(&ds),
        fig2: fig2(&ds, 15),
        fig3: fig3(&ds, 15),
        fig6: fig6(&ds, &top4),
        fig5: fig5_rows,
        fig7: fig7(&ds),
        anomalous: anomalous_stats(&ds, DatasetId::AfterAccept),
        call_types: call_type_mix(&ds, DatasetId::AfterAccept),
        concentration: concentration(&ds, DatasetId::AfterAccept),
        timeline: timeline(outcome),
    }
}

impl Evaluation {
    /// Render the full evaluation as a plain-text report.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str("== Campaign (§2.4) ==\n");
        out.push_str(&format!(
            "attempted {}  visited (D_BA) {}  accepted (D_AA) {} ({})\n",
            self.stats.attempted,
            self.stats.visited,
            self.stats.accepted,
            pct(self.stats.accepted as f64 / self.stats.visited.max(1) as f64),
        ));
        out.push_str(&format!(
            "unique third parties {}  legitimate coverage of D_AA {}  median page load {} ms\n",
            self.stats.unique_third_parties,
            pct(self.stats.legitimate_coverage_aa),
            self.stats.median_page_load_ms,
        ));
        out.push_str(&format!(
            "site outcomes: {} complete, {} degraded, {} failed\n",
            self.stats.outcomes.complete, self.stats.outcomes.degraded, self.stats.outcomes.failed,
        ));
        if self.stats.outcomes.degraded > 0 {
            out.push_str(&format!(
                "NOTE: degraded coverage on {} of {} visited sites (retries/timeouts under fault injection) — rate-style results carry extra noise\n",
                self.stats.outcomes.degraded, self.stats.visited,
            ));
        }
        out.push('\n');
        out.push_str("== Table 1 ==\n");
        out.push_str(&self.table1.render());
        out.push('\n');
        out.push_str(&render_fig2(&self.fig2));
        out.push('\n');
        out.push_str(&render_fig3(&self.fig3));
        out.push('\n');
        out.push_str(&render_fig5(&self.fig5));
        out.push('\n');
        out.push_str(&render_fig6(&self.fig6));
        out.push('\n');
        out.push_str(&render_fig7(&self.fig7));
        out.push('\n');
        out.push_str(&render_anomalous(&self.anomalous));
        out.push('\n');
        out.push_str(&render_call_types(&self.call_types));
        out.push('\n');
        out.push_str(&render_concentration(&self.concentration));
        out.push('\n');
        out.push_str(&render_timeline(&self.timeline));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_lab_end_to_end() {
        let lab = Lab::new(crate::LabConfig::quick(71, 600).with_threads(4));
        let outcome = lab.run();
        let eval = evaluate(&outcome);
        assert_eq!(eval.stats.attempted, 600);
        assert!(eval.stats.visited > 480);
        assert!(eval.stats.accepted > 100);
        assert!(eval.stats.unique_third_parties > 100);
        // Without faults the outcome partition is degenerate.
        assert_eq!(eval.stats.outcomes.degraded, 0);
        assert_eq!(eval.stats.outcomes.total(), 600);
        // The report renders every section.
        let report = eval.render_report();
        assert!(report.contains("site outcomes:"));
        assert!(
            !report.contains("NOTE: degraded"),
            "no degraded note without faults"
        );
        for needle in [
            "Table 1",
            "Figure 2",
            "Figure 3",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "anomalous",
            "enrolment",
        ] {
            assert!(report.contains(needle), "missing section {needle}");
        }
    }
}
