//! `topics-lab serve` — a live query + observability service over a
//! campaign store.
//!
//! The batch pipeline renders every artefact once and exits; this
//! module keeps a campaign resident and answers per-figure queries
//! over HTTP/1.1 — dependency-free, `std::net::TcpListener` plus a
//! small scoped worker pool. At startup the store is loaded **once**:
//! the interned [`ColumnarCampaign`] arena and its scanned
//! [`ColumnIndex`](topics_analysis::ColumnIndex) stay in memory (a
//! JSON campaign is encoded into the same columnar form first), every
//! endpoint body is rendered into an immutable cache, and the row
//! structs are dropped. From then on a request is a map lookup — zero
//! row-struct materialisation per query — and the column-computable
//! figures (2, 3, 5) are rendered through
//! [`ColumnQueries`](topics_analysis::ColumnQueries), the typed query
//! API over the scanned columns. Every `/api/*` response is
//! byte-identical to the artefact the offline `crawl`/`merge`
//! pipeline writes for the same store (`tests/integration_serve.rs`
//! proves it).
//!
//! The server is observed with the repo's own stack: per-endpoint
//! request counters, an in-flight gauge and a latency histogram live
//! in a [`MetricsRegistry`](topics_obs::MetricsRegistry) exported at
//! `/metrics` (Prometheus text), every request is an `http-access`
//! event through the structured [`EventLog`](topics_obs::EventLog),
//! and `POST /shutdown` drains gracefully: the accept loop stops,
//! queued connections finish, workers join.
//!
//! | Path              | Body (byte-identical artefact)         |
//! |-------------------|----------------------------------------|
//! | `/api/report`     | `report.txt`                           |
//! | `/api/table1`     | `table1.csv`                           |
//! | `/api/fig2`       | `fig2_presence.csv`                    |
//! | `/api/fig3`       | `fig3_fractions.csv`                   |
//! | `/api/fig5`       | `fig5_questionable.csv`                |
//! | `/api/fig6`       | `fig6_geo.csv`                         |
//! | `/api/fig7`       | `fig7_cmp.csv`                         |
//! | `/api/anomalous`  | `sec4_anomalous.csv`                   |
//! | `/api/doctor`     | the `doctor` subcommand's report       |
//! | `/api/profile`    | the trace profile (`topics_obs::profile`) |
//! | `/metrics`        | live Prometheus exposition             |
//! | `/healthz` `/readyz` | liveness / readiness probes         |

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use topics_analysis::export as csv;
use topics_analysis::{colscan, ColumnQueries};
use topics_crawler::columnar::{ColumnarCampaign, COLUMNAR_MAGIC};
use topics_crawler::record::CampaignOutcome;
use topics_obs::{FieldValue, Obs, Trace};

/// The eight artefact-backed API endpoints: URL path → the bundle file
/// whose bytes the endpoint serves. `/api/doctor` and `/api/profile`
/// are served too but render from the trace, not a bundle file.
pub const API_ENDPOINTS: &[(&str, &str)] = &[
    ("/api/report", "report.txt"),
    ("/api/table1", "table1.csv"),
    ("/api/fig2", "fig2_presence.csv"),
    ("/api/fig3", "fig3_fractions.csv"),
    ("/api/fig5", "fig5_questionable.csv"),
    ("/api/fig6", "fig6_geo.csv"),
    ("/api/fig7", "fig7_cmp.csv"),
    ("/api/anomalous", "sec4_anomalous.csv"),
];

/// Request header cap: anything larger is a 400, not a buffer grown
/// at a hostile client's pace.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket read timeout — a stalled client cannot pin a
/// worker past this.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// What can go wrong binding and loading the service, kept typed so
/// the CLI maps each case to a distinct exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The campaign path does not exist.
    Missing(PathBuf),
    /// The campaign file exists but does not decode/validate.
    Corrupt(PathBuf, String),
    /// Reading the campaign failed for another I/O reason.
    Io(PathBuf, String),
    /// Binding the listen address failed.
    Bind(String, String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Missing(p) => write!(f, "campaign {} not found", p.display()),
            ServeError::Corrupt(p, e) => write!(f, "campaign {} is corrupt: {e}", p.display()),
            ServeError::Io(p, e) => write!(f, "reading campaign {}: {e}", p.display()),
            ServeError::Bind(addr, e) => write!(f, "binding {addr}: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The campaign file (either store; a directory must be resolved
    /// by the caller, the CLI does).
    pub campaign: PathBuf,
    /// The span trace backing `/api/doctor` and `/api/profile`.
    /// `None` means "try `trace.jsonl` next to the campaign"; the two
    /// endpoints answer 404 when no trace is readable.
    pub trace: Option<PathBuf>,
    /// Listen address; port 0 picks an ephemeral port (read it back
    /// with [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads handling connections.
    pub threads: usize,
}

impl ServeConfig {
    /// Defaults: ephemeral loopback port, 4 workers, trace discovered
    /// next to the campaign.
    pub fn new(campaign: PathBuf) -> ServeConfig {
        ServeConfig {
            campaign,
            trace: None,
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
        }
    }
}

/// The immutable query state built once at startup: the resident
/// columnar store (interned arena), the scanned column index wrapped
/// in its typed query API, and every endpoint body pre-rendered.
pub struct QueryService {
    store: ColumnarCampaign,
    queries: ColumnQueries,
    bodies: BTreeMap<&'static str, (&'static str, Arc<[u8]>)>,
    build_wall_ms: u64,
}

impl QueryService {
    /// Load a campaign file (either store) and build the service: the
    /// rows are materialised once here to render the row-dependent
    /// artefacts (report, table 1, figures 6/7, anomalous), then
    /// dropped — queries never touch row structs again. The
    /// column-computable figures (2, 3, 5) are rendered through
    /// [`ColumnQueries`] so the serving path exercises the same code a
    /// live per-request query would.
    pub fn build(campaign: &Path, trace: Option<&Path>) -> Result<QueryService, ServeError> {
        let started = Instant::now();
        let bytes = std::fs::read(campaign).map_err(|e| match e.kind() {
            std::io::ErrorKind::NotFound => ServeError::Missing(campaign.to_path_buf()),
            _ => ServeError::Io(campaign.to_path_buf(), e.to_string()),
        })?;
        let corrupt = |e: String| -> ServeError { ServeError::Corrupt(campaign.to_path_buf(), e) };
        let (store, outcome) = if bytes.starts_with(&COLUMNAR_MAGIC) {
            let store = ColumnarCampaign::decode(bytes).map_err(|e| corrupt(e.to_string()))?;
            let outcome = store.to_outcome().map_err(|e| corrupt(e.to_string()))?;
            (store, outcome)
        } else {
            let json = String::from_utf8(bytes).map_err(|e| corrupt(e.to_string()))?;
            let outcome: CampaignOutcome =
                serde_json::from_str(&json).map_err(|e| corrupt(e.to_string()))?;
            outcome.check_schema().map_err(|e| corrupt(e.to_string()))?;
            (ColumnarCampaign::from_outcome(&outcome), outcome)
        };
        let queries =
            ColumnQueries::new(colscan::scan(&store).map_err(|e| corrupt(e.to_string()))?);

        let eval = crate::evaluate(&outcome);
        let mut bodies: BTreeMap<&'static str, (&'static str, Arc<[u8]>)> = BTreeMap::new();
        let mut put = |path: &'static str, content_type: &'static str, body: String| {
            bodies.insert(path, (content_type, body.into_bytes().into()));
        };
        const TEXT: &str = "text/plain; charset=utf-8";
        const CSV: &str = "text/csv; charset=utf-8";
        put("/api/report", TEXT, eval.render_report());
        put("/api/table1", CSV, csv::table1_csv(&eval.table1));
        put("/api/fig2", CSV, csv::presence_csv(&queries.fig2(15)));
        put("/api/fig3", CSV, csv::presence_csv(&queries.fig3(15)));
        put("/api/fig5", CSV, csv::questionable_csv(&queries.fig5(15)));
        put("/api/fig6", CSV, csv::geo_csv(&eval.fig6));
        put("/api/fig7", CSV, csv::cmp_csv(&eval.fig7));
        put("/api/anomalous", CSV, csv::anomalous_csv(&eval.anomalous));

        // The doctor/profile endpoints mirror the subcommands byte for
        // byte, including the segment/columnar directory checks.
        let trace_path = trace
            .map(Path::to_path_buf)
            .unwrap_or_else(|| campaign.with_file_name("trace.jsonl"));
        if let Ok(text) = std::fs::read_to_string(&trace_path) {
            let trace = Trace::from_jsonl(&text)
                .map_err(|e| corrupt(format!("trace {}: {e}", trace_path.display())))?;
            let mut report = crate::diagnose(&outcome, &trace, 10);
            if let Some(dir) = campaign.parent().filter(|d| d.is_dir()) {
                let (checked, violations) = crate::doctor::verify_segments(dir, &outcome);
                if checked > 0 {
                    report = report.with_segment_checks(checked, violations);
                }
                if let Some(check) = crate::doctor::verify_columnar(dir, &outcome) {
                    report = report.with_columnar_check(check);
                }
            }
            put("/api/doctor", TEXT, report.render());
            put(
                "/api/profile",
                TEXT,
                topics_obs::profile(&trace, 10).render(),
            );
        }

        let build_wall_ms = started.elapsed().as_millis() as u64;
        // `outcome` and `eval` drop here: the resident state is the
        // columnar arena, the scanned index, and the body cache.
        Ok(QueryService {
            store,
            queries,
            bodies,
            build_wall_ms,
        })
    }

    /// The resident store (interned arena; `bytes().len()` is the
    /// store footprint).
    pub fn store(&self) -> &ColumnarCampaign {
        &self.store
    }

    /// The typed column queries over the resident index.
    pub fn queries(&self) -> &ColumnQueries {
        &self.queries
    }

    /// Milliseconds the one-time load + scan + render took (the cold
    /// cost a first query would otherwise pay).
    pub fn build_wall_ms(&self) -> u64 {
        self.build_wall_ms
    }

    /// The pre-rendered body for an API path, if the path exists.
    pub fn body(&self, path: &str) -> Option<&(&'static str, Arc<[u8]>)> {
        self.bodies.get(path)
    }

    /// Every served API path (the artefact endpoints plus
    /// doctor/profile when a trace was found).
    pub fn api_paths(&self) -> Vec<&'static str> {
        self.bodies.keys().copied().collect()
    }
}

/// One parsed response, as [`http_fetch`] returns it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
}

/// The in-repo test client: one blocking HTTP/1.1 request over a
/// fresh connection (`Connection: close`), used by the CI smoke, the
/// integration suite, and the `fetch` subcommand. Deliberately
/// minimal — it only understands what [`Server`] emits.
pub fn http_fetch(addr: &str, method: &str, path: &str) -> std::io::Result<HttpResponse> {
    let mut conn = TcpStream::connect(addr)?;
    conn.set_read_timeout(Some(READ_TIMEOUT))?;
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: topics-lab\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw)?;
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_owned());
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..header_end]).map_err(|_| bad("non-UTF-8 header"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    Ok(HttpResponse {
        status,
        body: raw[header_end + 4..].to_vec(),
    })
}

/// A closed-over stop switch: flips the shutdown flag and pokes the
/// accept loop awake so [`Server::run`] can drain and return.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Request a graceful drain: stop accepting, finish queued and
    /// in-flight requests, join the workers.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop; the connection is dropped unread.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Connection hand-off queue between the accept loop and the workers.
#[derive(Default)]
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
}

impl ConnQueue {
    fn push(&self, conn: TcpStream) {
        let mut state = self.state.lock().expect("queue lock");
        state.0.push_back(conn);
        drop(state);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").1 = true;
        self.ready.notify_all();
    }

    /// Next connection; `None` once closed **and** drained, so a
    /// graceful shutdown still serves everything already accepted.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(conn) = state.0.pop_front() {
                return Some(conn);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }
}

/// The HTTP server: a bound listener plus the immutable
/// [`QueryService`] and the live observability handle.
pub struct Server {
    listener: TcpListener,
    service: Arc<QueryService>,
    obs: Arc<Obs>,
    threads: usize,
    shutdown: Arc<AtomicBool>,
    served: AtomicU64,
}

impl Server {
    /// Load the campaign and bind the listen address. The service is
    /// fully built (store decoded, index scanned, bodies rendered)
    /// before this returns, so `/readyz` is truthful immediately; the
    /// one-time cost is published as `serve_build_wall_ms`.
    pub fn bind(config: &ServeConfig, obs: Arc<Obs>) -> Result<Server, ServeError> {
        let service = Arc::new(QueryService::build(
            &config.campaign,
            config.trace.as_deref(),
        )?);
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Bind(config.addr.clone(), e.to_string()))?;
        obs.metrics
            .gauge("serve_build_wall_ms")
            .set(service.build_wall_ms() as i64);
        obs.metrics
            .gauge("serve_store_bytes")
            .set(service.store().bytes().len() as i64);
        obs.metrics
            .gauge("serve_sites")
            .set(service.store().site_count() as i64);
        obs.metrics.gauge("serve_ready").set(1);
        Ok(Server {
            listener,
            service,
            obs,
            threads: config.threads.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
            served: AtomicU64::new(0),
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// A stop switch usable from other threads (tests, signal hooks).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.local_addr(),
        }
    }

    /// The service this server answers from.
    pub fn service(&self) -> &QueryService {
        &self.service
    }

    /// Serve until a shutdown is requested (`POST /shutdown` or
    /// [`ServerHandle::stop`]), then drain: accepted connections are
    /// finished, the workers join, and the total request count is
    /// returned. The worker pool is scoped — no detached threads
    /// survive this call.
    pub fn run(&self) -> u64 {
        let queue = ConnQueue::default();
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| {
                    while let Some(conn) = queue.pop() {
                        self.handle_conn(conn);
                    }
                });
            }
            loop {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((conn, _)) => {
                        // The shutdown poke (and anything racing it)
                        // is dropped, not served.
                        if self.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        queue.push(conn);
                    }
                    Err(e) => {
                        if self.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        self.obs.events.error(
                            "http-accept-error",
                            vec![("error".to_owned(), FieldValue::Str(e.to_string()))],
                        );
                    }
                }
            }
            queue.close();
        });
        self.obs.metrics.gauge("serve_ready").set(0);
        self.served.load(Ordering::SeqCst)
    }

    /// Route one request path to `(status, endpoint label, content
    /// type, body)`. The label is the path for known routes and
    /// `"other"` for everything else, so the request-counter
    /// cardinality is bounded by the route table.
    fn route(&self, method: &str, path: &str) -> (u16, &'static str, &'static str, Arc<[u8]>) {
        const TEXT: &str = "text/plain; charset=utf-8";
        let body = |s: &str| -> Arc<[u8]> { s.as_bytes().to_vec().into() };
        if method == "POST" && path == "/shutdown" {
            self.shutdown.store(true, Ordering::SeqCst);
            // Poke the accept loop awake so the drain starts now, not
            // at the next client connection.
            let _ = TcpStream::connect(self.local_addr());
            return (200, "/shutdown", TEXT, body("draining\n"));
        }
        if method != "GET" {
            return (405, "other", TEXT, body("method not allowed\n"));
        }
        match path {
            "/healthz" => (200, "/healthz", TEXT, body("ok\n")),
            "/readyz" => (200, "/readyz", TEXT, body("ready\n")),
            "/metrics" => {
                // Rendered after the request counter increment, so a
                // scrape observes itself — counters reconcile exactly
                // against requests issued.
                (200, "/metrics", TEXT, body(""))
            }
            _ => match self.service.body(path) {
                Some((content_type, b)) => {
                    let label = API_ENDPOINTS
                        .iter()
                        .map(|(p, _)| *p)
                        .chain(["/api/doctor", "/api/profile"])
                        .find(|p| *p == path)
                        .unwrap_or("other");
                    (200, label, content_type, Arc::clone(b))
                }
                None if path == "/api/doctor" || path == "/api/profile" => (
                    404,
                    "other",
                    TEXT,
                    body("no trace.jsonl next to the campaign\n"),
                ),
                None => (404, "other", TEXT, body("not found\n")),
            },
        }
    }

    /// Handle one connection: parse, count, answer, log.
    fn handle_conn(&self, mut conn: TcpStream) {
        let started = Instant::now();
        let _ = conn.set_read_timeout(Some(READ_TIMEOUT));
        let inflight = self.obs.metrics.gauge("http_inflight_requests");
        inflight.add(1);
        let parsed = read_request(&mut conn);
        let (method, path) = match &parsed {
            Ok((m, p)) => (m.as_str(), p.as_str()),
            Err(_) => ("", ""),
        };
        let (status, label, content_type, mut response_body) = if parsed.is_ok() {
            self.route(method, path)
        } else {
            (
                400,
                "other",
                "text/plain; charset=utf-8",
                b"bad request\n".to_vec().into(),
            )
        };
        self.obs
            .metrics
            .labeled_counter("http_requests_total", "path", label)
            .inc();
        self.obs
            .metrics
            .labeled_counter("http_responses_total", "status", &status.to_string())
            .inc();
        if status == 200 && path == "/metrics" {
            response_body = self
                .obs
                .metrics
                .snapshot()
                .render_prometheus()
                .into_bytes()
                .into();
        }
        let wrote = write_response(&mut conn, status, content_type, &response_body);
        let wall_us = started.elapsed().as_micros() as u64;
        self.obs
            .metrics
            .histogram("http_request_wall_ms")
            .observe(wall_us / 1_000);
        inflight.add(-1);
        self.served.fetch_add(1, Ordering::SeqCst);
        self.obs.events.info(
            "http-access",
            vec![
                (
                    "method".to_owned(),
                    FieldValue::Str(if method.is_empty() {
                        "?".to_owned()
                    } else {
                        method.to_owned()
                    }),
                ),
                (
                    "path".to_owned(),
                    FieldValue::Str(if path.is_empty() {
                        "?".to_owned()
                    } else {
                        path.to_owned()
                    }),
                ),
                ("status".to_owned(), FieldValue::U64(status as u64)),
                (
                    "bytes".to_owned(),
                    FieldValue::U64(response_body.len() as u64),
                ),
                ("wall_us".to_owned(), FieldValue::U64(wall_us)),
                (
                    "write_ok".to_owned(),
                    FieldValue::Str(wrote.is_ok().to_string()),
                ),
            ],
        );
    }
}

/// Read and parse the request line; headers are consumed and ignored
/// (no endpoint takes a body).
fn read_request(conn: &mut TcpStream) -> std::io::Result<(String, String)> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request header too large",
            ));
        }
        let n = conn.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    parse_request_line(&buf)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad request line"))
}

/// `METHOD PATH HTTP/…` → `(METHOD, PATH)`; anything else is `None`.
fn parse_request_line(raw: &[u8]) -> Option<(String, String)> {
    let line_end = raw.windows(2).position(|w| w == b"\r\n")?;
    let line = std::str::from_utf8(&raw[..line_end]).ok()?;
    let mut parts = line.split(' ');
    let method = parts.next()?.to_owned();
    let path = parts.next()?.to_owned();
    let version = parts.next()?;
    if method.is_empty() || !path.starts_with('/') || !version.starts_with("HTTP/") {
        return None;
    }
    Some((method, path))
}

/// Write a complete `Connection: close` response.
fn write_response(
    conn: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        conn,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    conn.write_all(body)?;
    conn.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_strictly() {
        let ok = parse_request_line(b"GET /api/report HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(ok, ("GET".to_owned(), "/api/report".to_owned()));
        let post = parse_request_line(b"POST /shutdown HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(post.0, "POST");
        for bad in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"/x GET\r\n",
            b"",
            b"no crlf at all",
        ] {
            assert!(parse_request_line(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn endpoint_table_matches_bundle_files() {
        // Every artefact-backed endpoint must point at a real bundle
        // file name — the byte-identity contract depends on it.
        for (path, artefact) in API_ENDPOINTS {
            assert!(path.starts_with("/api/"), "{path}");
            assert!(
                crate::export::BUNDLE_FILES.contains(artefact),
                "{artefact} is not a bundle file"
            );
        }
    }

    #[test]
    fn queue_drains_after_close() {
        let q = ConnQueue::default();
        q.close();
        assert!(q.pop().is_none(), "closed empty queue yields None");
    }

    #[test]
    fn serve_error_display_names_the_path() {
        let p = PathBuf::from("/tmp/x/campaign.col");
        assert!(ServeError::Missing(p.clone())
            .to_string()
            .contains("not found"));
        assert!(ServeError::Corrupt(p.clone(), "bad magic".into())
            .to_string()
            .contains("corrupt"));
        assert!(ServeError::Bind("127.0.0.1:1".into(), "denied".into())
            .to_string()
            .contains("127.0.0.1:1"));
        let _ = ServeError::Io(p, "weird".into()).to_string();
    }

    fn build_err(path: &Path) -> ServeError {
        match QueryService::build(path, None) {
            Ok(_) => panic!("expected an error for {}", path.display()),
            Err(e) => e,
        }
    }

    #[test]
    fn missing_campaign_is_typed() {
        let err = build_err(Path::new("/nonexistent/campaign.col"));
        assert!(matches!(err, ServeError::Missing(_)), "{err}");
    }

    #[test]
    fn corrupt_campaign_is_typed() {
        let dir = std::env::temp_dir().join(format!("topics-serve-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.json");
        std::fs::write(&path, "definitely not json").unwrap();
        let err = build_err(&path);
        assert!(matches!(err, ServeError::Corrupt(..)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
