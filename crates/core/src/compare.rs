//! Paper-vs-measured comparison.
//!
//! For every quantity the paper reports, this module pairs the published
//! value with the value measured on the synthetic web and judges whether
//! the *shape* holds (EXPERIMENTS.md is generated from these rows). Pure
//! counts only make sense at the paper's 50,000-site scale; rate-style
//! metrics are checked at any scale.

use crate::lab::Evaluation;
use topics_analysis::abtest::{clustering_share, fit_fraction};
use topics_analysis::report::{pct, Table};

/// One comparison row.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Which experiment (table/figure/section) the metric belongs to.
    pub experiment: &'static str,
    /// Metric name.
    pub metric: &'static str,
    /// The value the paper reports.
    pub paper: String,
    /// The value measured on the synthetic web.
    pub measured: String,
    /// `Some(ok)` when the row is checkable at this scale.
    pub ok: Option<bool>,
}

fn row(
    experiment: &'static str,
    metric: &'static str,
    paper: impl Into<String>,
    measured: impl Into<String>,
    ok: Option<bool>,
) -> ComparisonRow {
    ComparisonRow {
        experiment,
        metric,
        paper: paper.into(),
        measured: measured.into(),
        ok,
    }
}

fn within(x: f64, lo: f64, hi: f64) -> Option<bool> {
    Some(x >= lo && x <= hi)
}

/// Build the full comparison. `full_scale` marks a 50,000-site campaign,
/// enabling the absolute-count checks.
pub fn comparison_rows(eval: &Evaluation, full_scale: bool) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    let s = &eval.stats;
    let t = &eval.table1;
    let gate = |ok: Option<bool>| if full_scale { ok } else { None };

    // ---- §2.4 aggregates -------------------------------------------
    let visit_rate = s.visited as f64 / s.attempted.max(1) as f64;
    rows.push(row(
        "§2.4",
        "visited / attempted",
        "43,405 / 50,000 (86.8%)",
        format!("{} / {} ({})", s.visited, s.attempted, pct(visit_rate)),
        within(visit_rate, 0.84, 0.90),
    ));
    let accept_rate = s.accepted as f64 / s.visited.max(1) as f64;
    rows.push(row(
        "§2.4",
        "After-Accept share",
        "14,719 / 43,405 (33.9%)",
        format!("{} / {} ({})", s.accepted, s.visited, pct(accept_rate)),
        within(accept_rate, 0.25, 0.42),
    ));
    rows.push(row(
        "§2.4",
        "unique third parties",
        "19,534",
        s.unique_third_parties.to_string(),
        gate(within(s.unique_third_parties as f64, 14_000.0, 26_000.0)),
    ));

    // ---- Table 1 -----------------------------------------------------
    rows.push(row(
        "Table 1",
        "Allowed",
        "193",
        t.allowed_total.to_string(),
        Some(t.allowed_total == 193),
    ));
    rows.push(row(
        "Table 1",
        "Allowed & !Attested",
        "12",
        t.allowed_not_attested.to_string(),
        Some(t.allowed_not_attested == 12),
    ));
    rows.push(row(
        "Table 1",
        "D_AA Allowed & Attested callers",
        "47",
        t.daa_allowed_attested.to_string(),
        gate(within(t.daa_allowed_attested as f64, 38.0, 47.0)),
    ));
    rows.push(row(
        "Table 1",
        "D_AA !Allowed & Attested",
        "1 (distillery.com)",
        t.daa_not_allowed_attested.to_string(),
        gate(Some(t.daa_not_allowed_attested == 1)),
    ));
    rows.push(row(
        "Table 1",
        "D_AA !Allowed (anomalous)",
        "2,614",
        t.daa_not_allowed.to_string(),
        gate(within(t.daa_not_allowed as f64, 1_800.0, 3_600.0)),
    ));
    rows.push(row(
        "Table 1",
        "D_BA Allowed & Attested (questionable)",
        "28",
        t.dba_allowed_attested.to_string(),
        gate(within(t.dba_allowed_attested as f64, 20.0, 32.0)),
    ));
    rows.push(row(
        "Table 1",
        "D_BA !Allowed (questionable)",
        "1,308",
        t.dba_not_allowed.to_string(),
        gate(within(t.dba_not_allowed as f64, 800.0, 2_000.0)),
    ));

    // ---- §3 -----------------------------------------------------------
    rows.push(row(
        "§3",
        "D_AA sites with ≥1 legitimate call",
        "45%",
        pct(s.legitimate_coverage_aa),
        within(s.legitimate_coverage_aa, 0.35, 0.55),
    ));
    let ga_never_calls = eval
        .fig2
        .iter()
        .find(|r| r.cp.as_str() == "google-analytics.com")
        .map(|r| r.called == 0);
    rows.push(row(
        "Fig. 2",
        "google-analytics present-but-never-calls",
        "present on most sites, 0 calls",
        format!("{ga_never_calls:?}"),
        ga_never_calls,
    ));
    let dc = eval
        .fig2
        .iter()
        .find(|r| r.cp.as_str() == "doubleclick.net");
    rows.push(row(
        "Fig. 2",
        "doubleclick enabled fraction",
        "≈1/3 of sites where present",
        dc.map(|r| pct(r.enabled_fraction())).unwrap_or_default(),
        dc.map(|r| (0.22..=0.45).contains(&r.enabled_fraction())),
    ));
    let cluster = clustering_share(&eval.fig3, 0.08);
    rows.push(row(
        "Fig. 3",
        "CPs near canonical A/B fractions",
        "clusters at 100/75/66/50/33/25%",
        pct(cluster),
        within(cluster, 0.6, 1.0),
    ));
    let criteo = eval.fig3.iter().find(|r| r.cp.as_str() == "criteo.com");
    rows.push(row(
        "Fig. 3",
        "criteo.com enabled fraction",
        "75%",
        criteo
            .map(|r| pct(r.enabled_fraction()))
            .unwrap_or_default(),
        criteo.map(|r| fit_fraction(r.enabled_fraction()).nearest == 0.75),
    ));

    // ---- §4 -----------------------------------------------------------
    let a = &eval.anomalous;
    rows.push(row(
        "§4",
        "anomalous calls (D_AA)",
        "3,450",
        a.total_calls.to_string(),
        gate(within(a.total_calls as f64, 2_300.0, 5_000.0)),
    ));
    rows.push(row(
        "§4",
        "calls from same second-level label",
        "72%",
        pct(a.same_second_level_fraction),
        within(a.same_second_level_fraction, 0.60, 0.85),
    ));
    rows.push(row(
        "§4",
        "GTM on anomalous pages",
        "95%",
        pct(a.gtm_cooccurrence),
        within(a.gtm_cooccurrence, 0.88, 1.0),
    ));
    rows.push(row(
        "§4",
        "JavaScript call type",
        "100%",
        pct(a.javascript_fraction),
        within(a.javascript_fraction, 0.999, 1.0),
    ));

    // ---- §5 -----------------------------------------------------------
    let yandex_top = eval
        .fig5
        .first()
        .map(|r| r.cp.as_str().starts_with("yandex"));
    rows.push(row(
        "Fig. 5",
        "top questionable CP",
        "yandex.com (611 sites)",
        eval.fig5
            .first()
            .map(|r| format!("{} ({})", r.cp, r.websites))
            .unwrap_or_default(),
        yandex_top,
    ));
    let dc_questionable = eval.fig5.iter().any(|r| r.cp.as_str() == "doubleclick.net");
    rows.push(row(
        "Fig. 5",
        "doubleclick Before-Accept calls",
        "0",
        if dc_questionable { ">0" } else { "0" }.to_owned(),
        Some(!dc_questionable),
    ));
    let hubspot = eval
        .fig7
        .rows
        .iter()
        .find(|r| r.cmp.spec().name == "HubSpot");
    let hubspot_ratio = hubspot.map(|h| {
        if h.p_cmp > 0.0 {
            h.p_cmp_given_questionable / h.p_cmp
        } else {
            0.0
        }
    });
    rows.push(row(
        "Fig. 7",
        "HubSpot over-representation",
        "≈3×",
        hubspot_ratio
            .map(|r| format!("{r:.1}×"))
            .unwrap_or_default(),
        hubspot_ratio.map(|r| (1.5..=4.5).contains(&r)),
    ));
    let hubspot_q = hubspot.map(|h| h.p_questionable_given_cmp());
    rows.push(row(
        "Fig. 7",
        "P(questionable | HubSpot)",
        "12% (≈2× average)",
        hubspot_q.map(pct).unwrap_or_default(),
        hubspot_q.map(|q| q > 1.5 * eval.fig7.p_questionable()),
    ));

    // ---- timeline ------------------------------------------------------
    let first = eval.timeline.first.map(|f| f.to_date());
    rows.push(row(
        "§3",
        "first attestation",
        "2023-06-16",
        first
            .map(|(y, m, d)| format!("{y:04}-{m:02}-{d:02}"))
            .unwrap_or_default(),
        first.map(|(y, m, _)| (y, m) == (2023, 6)),
    ));
    rows.push(row(
        "§3",
        "enrolments per month",
        "≈a dozen",
        format!("{:.1}", eval.timeline.monthly_rate()),
        Some((6.0..=25.0).contains(&eval.timeline.monthly_rate())),
    ));

    rows
}

/// Render the comparison as text.
pub fn render_comparison(rows: &[ComparisonRow]) -> String {
    let mut t = Table::new(["experiment", "metric", "paper", "measured", "shape"]);
    for r in rows {
        t.row(vec![
            r.experiment.to_owned(),
            r.metric.to_owned(),
            r.paper.clone(),
            r.measured.clone(),
            match r.ok {
                Some(true) => "OK".into(),
                Some(false) => "DEVIATES".into(),
                None => "n/a at this scale".into(),
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, Lab, LabConfig};

    #[test]
    fn comparison_builds_at_small_scale() {
        let lab = Lab::new(LabConfig::quick(73, 800).with_threads(4));
        let outcome = lab.run();
        let eval = evaluate(&outcome);
        let rows = comparison_rows(&eval, false);
        assert!(rows.len() >= 18);
        // Scale-gated rows must be n/a at small scale.
        let anomalous_count = rows
            .iter()
            .find(|r| r.metric == "anomalous calls (D_AA)")
            .unwrap();
        assert!(anomalous_count.ok.is_none());
        // Rate rows are checkable.
        let visit = rows
            .iter()
            .find(|r| r.metric == "visited / attempted")
            .unwrap();
        assert_eq!(
            visit.ok,
            Some(true),
            "visit rate in band: {}",
            visit.measured
        );
        // Table-level identity checks hold at any scale.
        let allowed = rows.iter().find(|r| r.metric == "Allowed").unwrap();
        assert_eq!(allowed.ok, Some(true));
        let render = render_comparison(&rows);
        assert!(render.contains("paper"));
        assert!(render.contains("§4"));
    }
}
