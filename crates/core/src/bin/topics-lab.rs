//! `topics-lab` — the command-line front end of the reproduction.
//!
//! ```text
//! topics-lab crawl   [--sites N] [--seed S] [--full] [--out DIR]
//!                    [--allow-list corrupted|healthy|fail-closed]
//!                    [--reject] [--vantage eu|us] [--quiet]
//!                    [--metrics-out FILE] [--events-out FILE]
//!                    [--fault-profile off|light|heavy|RATE] [--fault-seed S]
//!                    [--probe-threads N] [--trace-out FILE] [--alloc-stats]
//!                    [--store json|columnar]
//!     Generate a synthetic web, run the Before/After-Accept campaign,
//!     and write the artefact bundle (campaign dataset, report,
//!     comparison, per-figure CSVs) to DIR (default: ./topics-lab-out).
//!     --store picks the dataset backend: `json` (campaign.json, the
//!     default row store) or `columnar` (campaign.col, the interned
//!     struct-of-arrays store with checksummed sections). Every other
//!     artefact is byte-identical between the two. With
//!     --metrics-out / --events-out, also write the Prometheus-style
//!     metrics snapshot and the JSONL event stream (relative paths land
//!     next to campaign.json). --fault-profile injects seeded network
//!     faults (DNS failures, resets, 5xx, slow responses, truncated
//!     attestations) at a named band or uniform RATE in [0,1];
//!     --fault-seed repositions the faults without changing the world.
//!     --probe-threads bounds the attestation-probe worker pool (default:
//!     the crawl thread count); the outputs are byte-identical for every
//!     value. --trace-out enables hierarchical span tracing and writes
//!     the sealed trace: a `.json` extension selects Chrome trace-event
//!     format (loadable in Perfetto / chrome://tracing), anything else
//!     one span per line as JSONL (what `doctor` reads). --alloc-stats
//!     turns on the counting allocator: phase/visit/probe spans gain
//!     alloc_bytes/alloc_count/peak_bytes attributes (read by
//!     `memprofile`), and the metrics snapshot gains mem_* gauges and
//!     the alloc_size_bytes histogram. The campaign outputs stay
//!     byte-identical with or without the flag.
//!
//! topics-lab shard   --shard K/N [--sites N] [--seed S] [--full]
//!                    [--out DIR] [--allow-list corrupted|healthy|fail-closed]
//!                    [--reject] [--vantage eu|us] [--quiet]
//!                    [--fault-profile off|light|heavy|RATE] [--fault-seed S]
//!                    [--probe-threads N]
//!     Run shard K of N (K is 1-based) of the same campaign `crawl`
//!     would run, as an independent process: generate the world, crawl
//!     only the shard's site-rank stripe, probe only the parties that
//!     stripe encountered (plus the allow-list), and write a
//!     checksummed record segment (shard-K-of-N.seg: visits, probes,
//!     metrics tally, stripped trace, FNV-1a trailer) to DIR (default:
//!     ./topics-lab-shards). Per-visit seeds, timestamps, and fault
//!     schedules are derived from the *global* rank, so the shards of a
//!     seed reassemble byte-identically.
//!
//! topics-lab merge   --segments DIR [--out DIR] [--store json|columnar]
//!     Verify and merge every *.seg in DIR back into one campaign:
//!     checks each segment's checksum, shard coverage and header
//!     agreement, reassembles the outcome, and writes the same artefact
//!     bundle `crawl` writes (campaign dataset, report, CSVs) plus the
//!     merged stripped trace (trace.jsonl) to DIR (default: the
//!     segments directory). With --store columnar, segments stream one
//!     at a time straight into the columnar writer and campaign.col is
//!     byte-identical to a single-process `crawl --store columnar`.
//!     The bundle is byte-identical to a single-process `crawl` of the
//!     same seed. Exits non-zero with a named violation on truncated,
//!     corrupted, duplicated or missing segments.
//!
//! topics-lab simulate [--users N] [--epochs N] [--sites N] [--visits N]
//!                    [--context N] [--window N] [--sample N]
//!                    [--noise RATE] [--seed S] [--threads N] [--out DIR]
//!                    [--metrics-out FILE] [--events-out FILE]
//!                    [--trace-out FILE] [--alloc-stats] [--quiet]
//!     Run the population-scale privacy testbed: advance a synthetic
//!     population's Topics histories in one epoch-major arena (parallel
//!     over --threads workers, default: all cores), then measure
//!     k-anonymity of the exposed top-5 sets per epoch and the
//!     cross-context re-identification rate per collection epoch.
//!     Writes sim_kanon.csv, sim_reident.csv and sim_report.txt to DIR
//!     (default: ./topics-sim-out). The CSVs are byte-identical for any
//!     --threads value and depend only on the config. Defaults: 100k
//!     users, 30 epochs, 5000 sites, 20 visits/epoch, 2 × 20-site
//!     context panels, trailing window auto-sized from --epochs, 10k
//!     query sample, API noise 0.05. --metrics-out / --events-out /
//!     --trace-out / --alloc-stats behave as in `crawl` (phase spans:
//!     sim-universe, sim-advance, sim-kanon, sim-attack).
//!
//! topics-lab doctor  --campaign DIR|FILE [--trace FILE] [--top N]
//!     Run-health report over a finished campaign and its trace: outcome
//!     partition, trace/metric reconciliation, critical path, per-phase
//!     self/total time, worker utilization, retry hot-spots, allocation
//!     balance (phase windows vs attributed children, when the trace
//!     carries memory attribution), and the top-N slowest visits.
//!     --campaign accepts the bundle directory or the campaign.json
//!     path; --trace defaults to trace.jsonl next to it. With --trace
//!     and no --campaign, runs in trace-only mode: integrity,
//!     phases and allocation balance without campaign reconciliation
//!     (e.g. over a `simulate` trace, which has no campaign). Exits
//!     non-zero when the trace has integrity violations (orphan spans,
//!     duplicate IDs, negative durations), the trace and the metric
//!     tally disagree, or a phase's allocation window undercuts its
//!     children.
//!
//! topics-lab memprofile --trace FILE | --campaign DIR [--top N]
//!     Memory-attribution report over a trace recorded with
//!     `crawl --alloc-stats --trace-out`: per-phase self/total heap
//!     allocation, the top-N allocating spans, and retry-storm
//!     allocation clusters. --campaign resolves to trace.jsonl inside
//!     the bundle directory. Exits non-zero when the trace carries no
//!     allocation attribution.
//!
//! topics-lab report  --campaign DIR|FILE [--store json|columnar]
//!     Re-render the evaluation report from a dumped campaign. The
//!     backend is sniffed from the file's magic bytes, so either store
//!     loads; a directory resolves to its campaign file (--store forces
//!     which one when both exist).
//!
//! topics-lab metrics --campaign DIR/campaign.json
//!     Re-derive the metrics snapshot from a dumped campaign and print
//!     it in Prometheus text format.
//!
//! topics-lab compare --campaign DIR/campaign.json [--full-scale]
//!     Print the paper-vs-measured table from a dumped campaign.
//!
//! topics-lab dossier --campaign DIR/campaign.json --cp DOMAIN
//!     Print everything the campaign knows about one calling party.
//!
//! topics-lab serve   --campaign DIR|FILE [--addr HOST:PORT] [--threads N]
//!                    [--trace FILE] [--addr-file FILE]
//!                    [--store json|columnar] [--quiet]
//!     Hold the campaign resident and answer per-figure queries over
//!     HTTP: `/api/report`, `/api/table1`, `/api/fig2`…`/api/fig7`,
//!     `/api/anomalous` (each byte-identical to the offline artefact),
//!     plus `/api/doctor` and `/api/profile` when a trace is found,
//!     `/metrics` (live Prometheus self-telemetry), `/healthz` and
//!     `/readyz`. --addr defaults to 127.0.0.1:0 (ephemeral port;
//!     --addr-file writes the bound address for scripts). Serves until
//!     `POST /shutdown`, then drains gracefully.
//!
//! topics-lab fetch   --addr HOST:PORT [--path /api/report] [--out FILE]
//!                    [--post]
//!     The in-repo HTTP client: one request against a running `serve`,
//!     body to stdout (or --out FILE). Exits 0 on 2xx, 1 otherwise.
//! ```
//!
//! Failures exit with a typed code scripts can branch on: 2 for usage
//! errors, 3 when a named campaign/trace input does not exist, 4 when
//! a campaign store exists but fails validation, 1 otherwise.
//!
//! Progress logging goes through the structured event log (echoed to
//! stderr); `--quiet` or `TOPICS_LOG=off` silences it.

use std::path::PathBuf;
use std::process::ExitCode;
use topics_core::crawler::campaign::AllowListSetup;
use topics_core::export::{load_campaign, write_artefacts, write_bundle, StoreKind};
use topics_core::obs::Obs;
use topics_core::{
    comparison_rows, diagnose, evaluate, metrics_snapshot_of, render_comparison, Lab, LabConfig,
};

/// The instrumented allocator wraps the system one for the whole
/// binary. It is pass-through (one relaxed load) until `--alloc-stats`
/// enables counting, so untracked runs pay nothing measurable.
#[global_allocator]
static ALLOC: topics_core::obs::CountingAlloc = topics_core::obs::CountingAlloc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  topics-lab crawl   [--sites N] [--seed S] [--full] [--out DIR] [--allow-list corrupted|healthy|fail-closed] [--reject] [--vantage eu|us] [--quiet] [--metrics-out FILE] [--events-out FILE] [--fault-profile off|light|heavy|RATE] [--fault-seed S] [--probe-threads N] [--trace-out FILE] [--alloc-stats] [--store json|columnar]\n  topics-lab shard   --shard K/N [--sites N] [--seed S] [--full] [--out DIR] [--allow-list corrupted|healthy|fail-closed] [--reject] [--vantage eu|us] [--quiet] [--fault-profile off|light|heavy|RATE] [--fault-seed S] [--probe-threads N] [--store json|columnar]\n  topics-lab merge   --segments DIR [--out DIR] [--store json|columnar]\n  topics-lab simulate [--users N] [--epochs N] [--sites N] [--visits N] [--context N] [--window N] [--sample N] [--noise RATE] [--seed S] [--threads N] [--out DIR] [--metrics-out FILE] [--events-out FILE] [--trace-out FILE] [--alloc-stats] [--quiet]\n  topics-lab report  --campaign DIR|FILE [--store json|columnar]\n  topics-lab metrics --campaign FILE\n  topics-lab compare --campaign FILE [--full-scale]\n  topics-lab dossier --campaign FILE --cp DOMAIN\n  topics-lab doctor  --campaign DIR|FILE [--trace FILE] [--top N] | --trace FILE [--top N]\n  topics-lab memprofile --trace FILE | --campaign DIR [--top N]\n  topics-lab serve   --campaign DIR|FILE [--addr HOST:PORT] [--threads N] [--trace FILE] [--addr-file FILE] [--store json|columnar] [--quiet]\n  topics-lab fetch   --addr HOST:PORT [--path /api/report] [--out FILE] [--post]"
    );
    ExitCode::from(2)
}

/// Tiny flag parser: `--name value` pairs plus bare `--flags`.
struct Args {
    rest: Vec<String>,
}

impl Args {
    fn new(rest: Vec<String>) -> Args {
        Args { rest }
    }

    /// The value following `--name`, if the flag is present. A following
    /// token that is itself a flag does not count — `--out --reject`
    /// is an error, not an output directory named `--reject`.
    fn value_of(&self, name: &str) -> Result<Option<&str>, String> {
        let Some(i) = self.rest.iter().position(|a| a == name) else {
            return Ok(None);
        };
        match self.rest.get(i + 1).map(String::as_str) {
            Some(v) if !v.starts_with("--") => Ok(Some(v)),
            _ => Err(format!("flag {name} requires a value")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.rest.iter().any(|a| a == name)
    }

    /// Reject flags no subcommand knows about (and stray positional
    /// tokens), so `--fault-profil heavy` fails loudly instead of
    /// silently running fault-free. `value_flags` consume the following
    /// token when it is not itself a flag — the same pairing rule as
    /// [`Args::value_of`].
    fn reject_unknown(&self, value_flags: &[&str], bare_flags: &[&str]) -> Result<(), String> {
        let mut i = 0;
        while i < self.rest.len() {
            let tok = self.rest[i].as_str();
            if value_flags.contains(&tok) {
                if self.rest.get(i + 1).is_some_and(|v| !v.starts_with("--")) {
                    i += 2;
                    continue;
                }
                i += 1; // missing value: value_of reports the error
            } else if bare_flags.contains(&tok) {
                i += 1;
            } else if tok.starts_with("--") {
                return Err(format!("unknown flag {tok:?}"));
            } else {
                return Err(format!("unexpected argument {tok:?}"));
            }
        }
        Ok(())
    }
}

/// A failure with its exit code attached: missing campaign/trace
/// inputs exit 3, a store that exists but fails validation exits 4,
/// everything else 1 (usage errors exit 2 via [`usage`]). Scripts can
/// branch on the class without parsing stderr.
#[derive(Debug, PartialEq, Eq)]
enum CliError {
    /// A named input file does not exist (exit 3).
    Missing(String),
    /// A campaign store exists but fails validation (exit 4).
    Corrupt(String),
    /// Any other failure (exit 1).
    Other(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Missing(_) => 3,
            CliError::Corrupt(_) => 4,
            CliError::Other(_) => 1,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Missing(m) | CliError::Corrupt(m) | CliError::Other(m) => m,
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Other(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> CliError {
        CliError::Other(m.to_owned())
    }
}

/// [`load_campaign`] with the error classified for exit codes: the
/// `io::ErrorKind` distinction the loader already makes (NotFound for
/// an absent file, InvalidData for a store that fails decode or
/// schema validation) becomes [`CliError::Missing`] vs
/// [`CliError::Corrupt`].
fn load_campaign_cli(
    path: &std::path::Path,
) -> Result<topics_core::crawler::record::CampaignOutcome, CliError> {
    load_campaign(path).map_err(|e| {
        let msg = format!("campaign {}: {e}", path.display());
        match e.kind() {
            std::io::ErrorKind::NotFound => CliError::Missing(msg),
            std::io::ErrorKind::InvalidData => CliError::Corrupt(msg),
            _ => CliError::Other(msg),
        }
    })
}

/// Strict `--store` parse: `json` (default) or `columnar`.
fn parse_store(args: &Args) -> Result<StoreKind, String> {
    match args.value_of("--store")? {
        None => Ok(StoreKind::default()),
        Some(s) => {
            StoreKind::parse(s).ok_or_else(|| format!("unknown --store {s:?} (json|columnar)"))
        }
    }
}

/// Strict `--probe-threads` parse: a positive integer, nothing else.
fn parse_probe_threads(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("bad --probe-threads {s:?} (want an integer ≥ 1)")),
    }
}

/// Strict `--shard K/N` parse: K is 1-based, 1 ≤ K ≤ N. Returns the
/// 0-based shard index and the shard count.
fn parse_shard_spec(s: &str) -> Result<(usize, usize), String> {
    let err = || format!("bad --shard {s:?} (want K/N with 1 ≤ K ≤ N, e.g. 2/4)");
    let (k, n) = s.split_once('/').ok_or_else(err)?;
    let k: usize = k.parse().map_err(|_| err())?;
    let n: usize = n.parse().map_err(|_| err())?;
    if k >= 1 && k <= n {
        Ok((k - 1, n))
    } else {
        Err(err())
    }
}

/// The campaign flags `crawl` and `shard` share — seed, scale, allow
/// list, consent, vantage, faults, probe threads — parsed into a
/// [`LabConfig`]. Returns the config plus the resolved site count and
/// seed (for progress logging and the full-scale switch).
fn parse_lab_config(args: &Args) -> Result<(LabConfig, usize, u64), String> {
    let seed: u64 = args
        .value_of("--seed")?
        .map(|s| s.parse().map_err(|_| format!("bad --seed {s:?}")))
        .transpose()?
        .unwrap_or(2024);
    let sites: usize = if args.has("--full") {
        50_000
    } else {
        args.value_of("--sites")?
            .map(|s| s.parse().map_err(|_| format!("bad --sites {s:?}")))
            .transpose()?
            .unwrap_or(5_000)
    };
    let allow_list = match args.value_of("--allow-list")?.unwrap_or("corrupted") {
        "corrupted" => AllowListSetup::CorruptedFailOpen,
        "healthy" => AllowListSetup::Healthy,
        "fail-closed" => AllowListSetup::CorruptedFailClosed,
        other => return Err(format!("unknown --allow-list {other:?}")),
    };
    let vantage = match args.value_of("--vantage")?.unwrap_or("eu") {
        "eu" => topics_core::net::http::Vantage::Europe,
        "us" => topics_core::net::http::Vantage::UnitedStates,
        other => return Err(format!("unknown --vantage {other:?} (eu|us)")),
    };
    let fault_profile = args
        .value_of("--fault-profile")?
        .map(topics_core::net::fault::FaultProfile::parse)
        .transpose()?
        .unwrap_or_else(topics_core::net::fault::FaultProfile::off);
    let fault_seed: Option<u64> = args
        .value_of("--fault-seed")?
        .map(|s| s.parse().map_err(|_| format!("bad --fault-seed {s:?}")))
        .transpose()?;
    let probe_threads: Option<usize> = args
        .value_of("--probe-threads")?
        .map(parse_probe_threads)
        .transpose()?;

    let mut config = LabConfig::quick(seed, sites)
        .with_allow_list(allow_list)
        .with_fault_profile(fault_profile);
    if let Some(s) = fault_seed {
        config = config.with_fault_seed(s);
    }
    if let Some(n) = probe_threads {
        config = config.with_probe_threads(n);
    }
    config.campaign.vantage = vantage;
    config.campaign.consent_action = if args.has("--reject") {
        topics_core::crawler::ConsentAction::Reject
    } else {
        topics_core::crawler::ConsentAction::Accept
    };
    Ok((config, sites, seed))
}

/// Resolve an output path: relative paths land next to the bundle.
fn resolve_out(out_dir: &std::path::Path, value: &str) -> PathBuf {
    let p = PathBuf::from(value);
    if p.is_absolute() {
        p
    } else {
        out_dir.join(p)
    }
}

fn cmd_crawl(args: &Args) -> Result<(), String> {
    args.reject_unknown(
        &[
            "--sites",
            "--seed",
            "--out",
            "--allow-list",
            "--vantage",
            "--metrics-out",
            "--events-out",
            "--fault-profile",
            "--fault-seed",
            "--probe-threads",
            "--trace-out",
            "--store",
        ],
        &["--full", "--reject", "--quiet", "--alloc-stats"],
    )?;
    let (config, sites, seed) = parse_lab_config(args)?;
    let store = parse_store(args)?;
    let out = PathBuf::from(args.value_of("--out")?.unwrap_or("topics-lab-out"));
    let metrics_out = args
        .value_of("--metrics-out")?
        .map(|v| resolve_out(&out, v));
    let events_out = args.value_of("--events-out")?.map(|v| resolve_out(&out, v));
    let trace_out = args.value_of("--trace-out")?.map(|v| resolve_out(&out, v));
    let alloc_stats = args.has("--alloc-stats");
    if alloc_stats {
        topics_core::obs::alloc::set_enabled(true);
    }

    let mut obs = if args.has("--quiet") {
        Obs::new()
    } else {
        Obs::with_stderr_echo()
    };
    if trace_out.is_some() {
        obs = obs.with_trace();
    }

    obs.events.info(
        "world-gen",
        vec![("sites".into(), sites.into()), ("seed".into(), seed.into())],
    );
    if !config.campaign.fault.is_off() {
        obs.events.info(
            "fault-injection",
            vec![(
                "profile".into(),
                format!("{:?}", config.campaign.fault).into(),
            )],
        );
    }
    let lab = {
        let _span = obs.phase("world-gen");
        Lab::new(config)
    };

    obs.events.info("crawl-start", vec![]);
    let run = lab.run_observed(&obs);
    obs.events.info(
        "crawl-done",
        vec![
            ("visited".into(), run.visited_count().into()),
            ("accepted".into(), run.accepted_count().into()),
        ],
    );

    let eval = {
        let _span = obs.phase("analysis");
        evaluate(&run.outcome)
    };
    {
        let _span = obs.phase("export");
        write_bundle(&out, &run.outcome, &eval, sites >= 50_000, store)
            .map_err(|e| format!("writing bundle to {}: {e}", out.display()))?;
    }

    if let Some(path) = &metrics_out {
        // Snapshot at write time so every phase gauge is included.
        if alloc_stats {
            topics_core::obs::alloc::publish(&obs.metrics);
        }
        let prom = obs.metrics.snapshot().render_prometheus();
        std::fs::write(path, prom)
            .map_err(|e| format!("writing metrics to {}: {e}", path.display()))?;
    }
    if let Some(path) = &events_out {
        std::fs::write(path, obs.events.to_jsonl())
            .map_err(|e| format!("writing events to {}: {e}", path.display()))?;
    }
    if let Some(path) = &trace_out {
        let trace = obs.trace.finish();
        let body = if path.extension().is_some_and(|e| e == "json") {
            trace.to_chrome_json()
        } else {
            trace.to_jsonl()
        };
        std::fs::write(path, body)
            .map_err(|e| format!("writing trace to {}: {e}", path.display()))?;
    }

    println!("{}", eval.render_report());
    println!("artefact bundle written to {}", out.display());
    if let Some(p) = &metrics_out {
        println!("metrics snapshot written to {}", p.display());
    }
    if let Some(p) = &events_out {
        println!("event stream written to {}", p.display());
    }
    if let Some(p) = &trace_out {
        println!("trace written to {}", p.display());
    }
    Ok(())
}

fn cmd_shard(args: &Args) -> Result<(), String> {
    args.reject_unknown(
        &[
            "--shard",
            "--sites",
            "--seed",
            "--out",
            "--allow-list",
            "--vantage",
            "--fault-profile",
            "--fault-seed",
            "--probe-threads",
            "--store",
        ],
        &["--full", "--reject", "--quiet"],
    )?;
    // Segments are store-agnostic; the flag is validated here so a
    // sharded pipeline can pass the same flag set to every stage, and
    // `merge --store` picks the bundle backend.
    let _ = parse_store(args)?;
    let (shard, shards) = parse_shard_spec(
        args.value_of("--shard")?
            .ok_or("shard needs --shard K/N (e.g. 2/4)")?,
    )?;
    let (config, _, seed) = parse_lab_config(args)?;
    let out = PathBuf::from(args.value_of("--out")?.unwrap_or("topics-lab-shards"));

    // The segment carries the stripped span trace, so the shard run is
    // always traced. No other phases may open on this handle — the
    // merge expects exactly the campaign's phase sequence.
    let obs = if args.has("--quiet") {
        Obs::new()
    } else {
        Obs::with_stderr_echo()
    }
    .with_trace();
    obs.events.info(
        "shard-start",
        vec![
            ("shard".into(), (shard + 1).into()),
            ("shards".into(), shards.into()),
            ("seed".into(), seed.into()),
        ],
    );
    let segment = topics_core::run_shard(&config, shard, shards, &obs);
    let sites = segment.sites.len();
    let probes = segment.probes.len();
    let path = topics_core::write_segment(&out, &segment)
        .map_err(|e| format!("writing segment to {}: {e}", out.display()))?;
    println!(
        "shard {}/{} segment written to {} ({} sites, {} probes)",
        shard + 1,
        shards,
        path.display(),
        sites,
        probes,
    );
    Ok(())
}

fn cmd_merge(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["--segments", "--out", "--store"], &[])?;
    let store = parse_store(args)?;
    let segments = PathBuf::from(
        args.value_of("--segments")?
            .ok_or("merge needs --segments DIR")?,
    );
    let out = args
        .value_of("--out")?
        .map(PathBuf::from)
        .unwrap_or_else(|| segments.clone());

    let count = topics_core::segment_paths(&segments)?.len();
    let (outcome, trace) = match store {
        StoreKind::Json => {
            let merged = topics_core::merge_dir(&segments)?;
            (merged.outcome, merged.trace)
        }
        StoreKind::Columnar => {
            // Stream each segment straight into the columnar writer
            // and persist the streamed bytes — byte-identical to a
            // single-process `crawl --store columnar`.
            let merged = topics_core::merge_dir_columnar(&segments)?;
            std::fs::create_dir_all(&out)
                .map_err(|e| format!("creating {}: {e}", out.display()))?;
            let col_path = out.join(StoreKind::Columnar.campaign_file());
            std::fs::write(&col_path, merged.store.bytes())
                .map_err(|e| format!("writing store to {}: {e}", col_path.display()))?;
            (merged.outcome, merged.trace)
        }
    };
    let eval = evaluate(&outcome);
    let full_scale = outcome.sites.len() >= 50_000;
    match store {
        StoreKind::Json => write_bundle(&out, &outcome, &eval, full_scale, store),
        StoreKind::Columnar => write_artefacts(&out, &outcome, &eval, full_scale),
    }
    .map_err(|e| format!("writing bundle to {}: {e}", out.display()))?;
    let trace_path = out.join("trace.jsonl");
    std::fs::write(&trace_path, trace.to_jsonl())
        .map_err(|e| format!("writing trace to {}: {e}", trace_path.display()))?;

    println!("{}", eval.render_report());
    println!(
        "merged {count} segment(s) from {} into {}",
        segments.display(),
        out.display(),
    );
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["--campaign", "--store"], &[])?;
    let store = args
        .value_of("--store")?
        .map(|s| {
            StoreKind::parse(s).ok_or_else(|| format!("unknown --store {s:?} (json|columnar)"))
        })
        .transpose()?;
    let path = args
        .value_of("--campaign")?
        .ok_or("report needs --campaign DIR|FILE")?;
    let campaign = resolve_campaign_with(path, store);
    let outcome = load_campaign_cli(&campaign)?;
    let eval = evaluate(&outcome);
    println!("{}", eval.render_report());
    Ok(())
}

fn cmd_metrics(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["--campaign"], &[])?;
    let path = args
        .value_of("--campaign")?
        .ok_or("metrics needs --campaign FILE")?;
    let outcome = load_campaign_cli(&PathBuf::from(path))?;
    print!("{}", metrics_snapshot_of(&outcome).render_prometheus());
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["--campaign"], &["--full-scale"])?;
    let path = args
        .value_of("--campaign")?
        .ok_or("compare needs --campaign FILE")?;
    let outcome = load_campaign(&PathBuf::from(path)).map_err(|e| e.to_string())?;
    let eval = evaluate(&outcome);
    let full = args.has("--full-scale") || outcome.sites.len() >= 50_000;
    println!("{}", render_comparison(&comparison_rows(&eval, full)));
    Ok(())
}

fn cmd_dossier(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["--campaign", "--cp"], &[])?;
    let path = args
        .value_of("--campaign")?
        .ok_or("dossier needs --campaign FILE")?;
    let cp = args.value_of("--cp")?.ok_or("dossier needs --cp DOMAIN")?;
    let cp = topics_core::net::Domain::parse(cp).map_err(|e| format!("bad --cp: {e}"))?;
    let outcome = load_campaign(&PathBuf::from(path)).map_err(|e| e.to_string())?;
    let ds = topics_core::analysis::dataset::Datasets::new(&outcome);
    println!(
        "{}",
        topics_core::analysis::dossier::dossier(&ds, &cp).render()
    );
    Ok(())
}

/// Strict `--top` parse: a positive integer, nothing else.
fn parse_top(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("bad --top {s:?} (want an integer ≥ 1)")),
    }
}

/// Resolve `--campaign`: a bundle directory means its campaign file —
/// the `--store` choice when given, else whichever store is present
/// (`campaign.json` preferred, `campaign.col` as the fallback).
fn resolve_campaign_with(path: &str, store: Option<StoreKind>) -> PathBuf {
    let p = PathBuf::from(path);
    if !p.is_dir() {
        return p;
    }
    if let Some(s) = store {
        return p.join(s.campaign_file());
    }
    topics_core::export::resolve_campaign_file(&p).unwrap_or_else(|| p.join("campaign.json"))
}

/// [`resolve_campaign_with`] without a store preference.
fn resolve_campaign(path: &str) -> PathBuf {
    resolve_campaign_with(path, None)
}

/// Read and parse a span trace, classifying a missing file as exit 3.
fn load_trace_cli(trace_path: &std::path::Path) -> Result<topics_core::obs::Trace, CliError> {
    let text = std::fs::read_to_string(trace_path).map_err(|e| {
        let msg = format!("reading trace {}: {e}", trace_path.display());
        match e.kind() {
            std::io::ErrorKind::NotFound => CliError::Missing(msg),
            _ => CliError::Other(msg),
        }
    })?;
    topics_core::obs::Trace::from_jsonl(&text)
        .map_err(|e| CliError::Other(format!("parsing trace {}: {e}", trace_path.display())))
}

fn cmd_doctor(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["--campaign", "--trace", "--top"], &[])?;
    let top = args
        .value_of("--top")?
        .map(parse_top)
        .transpose()?
        .unwrap_or(10);
    let Some(campaign) = args.value_of("--campaign")? else {
        // Trace-only mode: no campaign to reconcile against — e.g. a
        // `simulate` trace, which has no campaign dataset at all.
        let trace_path = PathBuf::from(
            args.value_of("--trace")?
                .ok_or("doctor needs --campaign DIR|FILE (or --trace FILE for trace-only mode)")?,
        );
        let trace = load_trace_cli(&trace_path)?;
        let report = topics_core::diagnose_trace(&trace, top);
        print!("{}", report.render());
        return if report.is_healthy() {
            Ok(())
        } else {
            Err(format!("doctor found {} violation(s)", report.violations().len()).into())
        };
    };
    let campaign = resolve_campaign(campaign);
    let trace_path = match args.value_of("--trace")? {
        Some(p) => PathBuf::from(p),
        None => campaign.with_file_name("trace.jsonl"),
    };

    let outcome = load_campaign_cli(&campaign)?;
    let trace = load_trace_cli(&trace_path)?;

    // Shard segments and a columnar store next to the campaign are
    // verified automatically: segment checksums, coverage, and
    // byte-identity of their merge; campaign.col section checksums,
    // intern referential integrity, and dataset agreement.
    let mut report = diagnose(&outcome, &trace, top);
    if let Some(dir) = campaign.parent().filter(|d| d.is_dir()) {
        let (checked, violations) = topics_core::doctor::verify_segments(dir, &outcome);
        if checked > 0 {
            report = report.with_segment_checks(checked, violations);
        }
        if let Some(check) = topics_core::doctor::verify_columnar(dir, &outcome) {
            report = report.with_columnar_check(check);
        }
    }
    print!("{}", report.render());
    if report.is_healthy() {
        Ok(())
    } else {
        Err(format!("doctor found {} violation(s)", report.violations().len()).into())
    }
}

fn cmd_memprofile(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["--trace", "--campaign", "--top"], &[])?;
    let trace_path = match (args.value_of("--trace")?, args.value_of("--campaign")?) {
        (Some(t), _) => PathBuf::from(t),
        (None, Some(c)) => resolve_campaign(c).with_file_name("trace.jsonl"),
        (None, None) => return Err("memprofile needs --trace FILE or --campaign DIR".into()),
    };
    let top = args
        .value_of("--top")?
        .map(parse_top)
        .transpose()?
        .unwrap_or(10);

    let text = std::fs::read_to_string(&trace_path)
        .map_err(|e| format!("reading trace {}: {e}", trace_path.display()))?;
    let trace = topics_core::obs::Trace::from_jsonl(&text)
        .map_err(|e| format!("parsing trace {}: {e}", trace_path.display()))?;

    let profile = topics_core::obs::mem_profile(&trace, top);
    if profile.is_empty() {
        return Err(format!(
            "trace {} carries no allocation attribution (record it with crawl --alloc-stats --trace-out)",
            trace_path.display()
        ));
    }
    print!("{}", profile.render());
    Ok(())
}

/// Strict `--threads` parse: a positive integer, nothing else.
fn parse_threads(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("bad --threads {s:?} (want an integer ≥ 1)")),
    }
}

/// Strict parse for the simulate shape flags: a positive integer.
fn parse_sim_count(flag: &str, s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("bad {flag} {s:?} (want an integer ≥ 1)")),
    }
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    args.reject_unknown(
        &[
            "--users",
            "--epochs",
            "--sites",
            "--visits",
            "--context",
            "--window",
            "--sample",
            "--noise",
            "--seed",
            "--threads",
            "--out",
            "--metrics-out",
            "--events-out",
            "--trace-out",
        ],
        &["--alloc-stats", "--quiet"],
    )?;
    let seed: u64 = args
        .value_of("--seed")?
        .map(|s| s.parse().map_err(|_| format!("bad --seed {s:?}")))
        .transpose()?
        .unwrap_or(42);
    let users = args
        .value_of("--users")?
        .map(|s| parse_sim_count("--users", s))
        .transpose()?
        .unwrap_or(100_000);
    let epochs = args
        .value_of("--epochs")?
        .map(|s| parse_sim_count("--epochs", s))
        .transpose()?
        .unwrap_or(30) as u64;
    let mut cfg = topics_core::baseline::SimConfig::new(seed, users, epochs);
    if let Some(s) = args.value_of("--sites")? {
        cfg.sites = parse_sim_count("--sites", s)?;
    }
    if let Some(s) = args.value_of("--visits")? {
        cfg.visits_per_epoch = parse_sim_count("--visits", s)?;
    }
    if let Some(s) = args.value_of("--context")? {
        cfg.context_sites = parse_sim_count("--context", s)?;
    }
    if let Some(s) = args.value_of("--window")? {
        cfg.window = parse_sim_count("--window", s)? as u64;
    }
    if let Some(s) = args.value_of("--sample")? {
        cfg.sample = parse_sim_count("--sample", s)?;
    }
    if let Some(s) = args.value_of("--noise")? {
        cfg.noise = s
            .parse::<f64>()
            .ok()
            .filter(|n| (0.0..=1.0).contains(n))
            .ok_or_else(|| format!("bad --noise {s:?} (want a rate in [0, 1])"))?;
    }
    cfg.validate()?;
    let threads = args
        .value_of("--threads")?
        .map(parse_threads)
        .transpose()?
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });

    let out = PathBuf::from(args.value_of("--out")?.unwrap_or("topics-sim-out"));
    let metrics_out = args
        .value_of("--metrics-out")?
        .map(|v| resolve_out(&out, v));
    let events_out = args.value_of("--events-out")?.map(|v| resolve_out(&out, v));
    let trace_out = args.value_of("--trace-out")?.map(|v| resolve_out(&out, v));
    let alloc_stats = args.has("--alloc-stats");
    if alloc_stats {
        topics_core::obs::alloc::set_enabled(true);
    }

    let mut obs = if args.has("--quiet") {
        Obs::new()
    } else {
        Obs::with_stderr_echo()
    };
    if trace_out.is_some() {
        obs = obs.with_trace();
    }

    obs.events.info(
        "sim-start",
        vec![
            ("users".into(), cfg.users.into()),
            ("epochs".into(), cfg.epochs.into()),
            ("seed".into(), cfg.seed.into()),
            ("threads".into(), threads.into()),
        ],
    );
    let run = topics_core::run_simulation(&cfg, threads, &obs)?;
    obs.events.info(
        "sim-done",
        vec![
            ("visits".into(), run.visits_total.into()),
            ("api_calls".into(), run.stats.api_calls.into()),
        ],
    );
    topics_core::publish_sim_metrics(&run, &obs.metrics);
    topics_core::write_sim_artefacts(&out, &run)?;

    if let Some(path) = &metrics_out {
        if alloc_stats {
            topics_core::obs::alloc::publish(&obs.metrics);
        }
        let prom = obs.metrics.snapshot().render_prometheus();
        std::fs::write(path, prom)
            .map_err(|e| format!("writing metrics to {}: {e}", path.display()))?;
    }
    if let Some(path) = &events_out {
        std::fs::write(path, obs.events.to_jsonl())
            .map_err(|e| format!("writing events to {}: {e}", path.display()))?;
    }
    if let Some(path) = &trace_out {
        let trace = obs.trace.finish();
        let body = if path.extension().is_some_and(|e| e == "json") {
            trace.to_chrome_json()
        } else {
            trace.to_jsonl()
        };
        std::fs::write(path, body)
            .map_err(|e| format!("writing trace to {}: {e}", path.display()))?;
    }

    print!(
        "{}",
        topics_core::baseline::simulate::render_sim_report(&run)
    );
    println!("simulation artefacts written to {}", out.display());
    if let Some(p) = &metrics_out {
        println!("metrics snapshot written to {}", p.display());
    }
    if let Some(p) = &events_out {
        println!("event stream written to {}", p.display());
    }
    if let Some(p) = &trace_out {
        println!("trace written to {}", p.display());
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(
        &[
            "--campaign",
            "--addr",
            "--threads",
            "--trace",
            "--addr-file",
            "--store",
        ],
        &["--quiet"],
    )?;
    let store = args
        .value_of("--store")?
        .map(|s| {
            StoreKind::parse(s).ok_or_else(|| format!("unknown --store {s:?} (json|columnar)"))
        })
        .transpose()?;
    let path = args
        .value_of("--campaign")?
        .ok_or("serve needs --campaign DIR|FILE")?;
    let mut config = topics_core::ServeConfig::new(resolve_campaign_with(path, store));
    if let Some(addr) = args.value_of("--addr")? {
        config.addr = addr.to_owned();
    }
    if let Some(threads) = args.value_of("--threads")? {
        config.threads = parse_threads(threads)?;
    }
    if let Some(trace) = args.value_of("--trace")? {
        config.trace = Some(PathBuf::from(trace));
    }

    let obs = std::sync::Arc::new(if args.has("--quiet") {
        Obs::new()
    } else {
        Obs::with_stderr_echo()
    });
    let server = topics_core::Server::bind(&config, obs).map_err(|e| {
        let msg = e.to_string();
        match e {
            topics_core::ServeError::Missing(_) => CliError::Missing(msg),
            topics_core::ServeError::Corrupt(..) => CliError::Corrupt(msg),
            _ => CliError::Other(msg),
        }
    })?;
    let addr = server.local_addr();
    if let Some(addr_file) = args.value_of("--addr-file")? {
        std::fs::write(addr_file, format!("{addr}\n"))
            .map_err(|e| format!("writing {addr_file}: {e}"))?;
    }
    eprintln!(
        "serving {} on http://{addr} ({} API endpoints; POST /shutdown to drain)",
        config.campaign.display(),
        server.service().api_paths().len(),
    );
    let served = server.run();
    eprintln!("drained after {served} request(s)");
    Ok(())
}

fn cmd_fetch(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["--addr", "--path", "--out"], &["--post"])?;
    let addr = args
        .value_of("--addr")?
        .ok_or("fetch needs --addr HOST:PORT")?;
    let path = args.value_of("--path")?.unwrap_or("/api/report");
    let method = if args.has("--post") { "POST" } else { "GET" };
    let resp = topics_core::http_fetch(addr, method, path)
        .map_err(|e| format!("fetch {method} http://{addr}{path}: {e}"))?;
    match args.value_of("--out")? {
        Some(out) => std::fs::write(out, &resp.body).map_err(|e| format!("writing {out}: {e}"))?,
        None => {
            use std::io::Write;
            std::io::stdout()
                .write_all(&resp.body)
                .map_err(|e| format!("writing stdout: {e}"))?;
        }
    }
    if (200..300).contains(&resp.status) {
        Ok(())
    } else {
        Err(format!("HTTP {} for {path}", resp.status).into())
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        return usage();
    };
    let args = Args::new(argv.collect());
    let result = match cmd.as_str() {
        "crawl" => cmd_crawl(&args).map_err(CliError::from),
        "shard" => cmd_shard(&args).map_err(CliError::from),
        "merge" => cmd_merge(&args).map_err(CliError::from),
        "report" => cmd_report(&args),
        "metrics" => cmd_metrics(&args),
        "compare" => cmd_compare(&args).map_err(CliError::from),
        "dossier" => cmd_dossier(&args).map_err(CliError::from),
        "simulate" => cmd_simulate(&args).map_err(CliError::from),
        "doctor" => cmd_doctor(&args),
        "memprofile" => cmd_memprofile(&args).map_err(CliError::from),
        "serve" => cmd_serve(&args),
        "fetch" => cmd_fetch(&args),
        "--help" | "-h" | "help" => return usage(),
        other => Err(format!("unknown subcommand {other:?}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::new(tokens.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn value_of_returns_the_following_token() {
        let a = args(&["--sites", "250", "--quiet"]);
        assert_eq!(a.value_of("--sites").unwrap(), Some("250"));
        assert_eq!(a.value_of("--seed").unwrap(), None);
        assert!(a.has("--quiet"));
    }

    #[test]
    fn a_flag_never_consumes_another_flag_as_its_value() {
        // Regression: `--out --reject` must be "missing value", not an
        // output directory literally named "--reject".
        let a = args(&["--out", "--reject"]);
        let err = a.value_of("--out").unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        assert!(a.has("--reject"), "the flag is still visible as itself");
    }

    #[test]
    fn trailing_flag_with_missing_value_is_an_error() {
        let a = args(&["--fault-profile"]);
        assert!(a
            .value_of("--fault-profile")
            .unwrap_err()
            .contains("requires a value"));
    }

    #[test]
    fn fault_flags_parse_named_bands_and_rates() {
        use topics_core::net::fault::FaultProfile;
        let a = args(&["--fault-profile", "light", "--fault-seed", "7"]);
        let profile = a
            .value_of("--fault-profile")
            .unwrap()
            .map(FaultProfile::parse)
            .transpose()
            .unwrap()
            .unwrap();
        assert_eq!(profile, FaultProfile::light());
        assert_eq!(a.value_of("--fault-seed").unwrap(), Some("7"));
        let rate = FaultProfile::parse("0.25").unwrap();
        assert!(!rate.is_off());
        assert!(FaultProfile::parse("1.5").is_err());
        assert!(FaultProfile::parse("surprise").is_err());
    }

    #[test]
    fn probe_threads_flag_parses_strictly() {
        let a = args(&["--probe-threads", "8"]);
        let n = a
            .value_of("--probe-threads")
            .unwrap()
            .map(parse_probe_threads)
            .transpose()
            .unwrap();
        assert_eq!(n, Some(8));
        // Absent flag means "inherit the crawl thread count".
        assert_eq!(args(&[]).value_of("--probe-threads").unwrap(), None);
        // Zero, negatives, fractions and words are all hard errors.
        for bad in ["0", "-3", "2.5", "many", ""] {
            let err = parse_probe_threads(bad).unwrap_err();
            assert!(err.contains("--probe-threads"), "{err}");
        }
        // A following flag is a missing value, not a thread count.
        let b = args(&["--probe-threads", "--quiet"]);
        assert!(b
            .value_of("--probe-threads")
            .unwrap_err()
            .contains("requires a value"));
    }

    #[test]
    fn trace_out_flag_is_accepted_and_strict() {
        // The crawl flag set accepts --trace-out as a value flag.
        let a = args(&["--trace-out", "trace.jsonl", "--quiet"]);
        assert!(a.reject_unknown(&["--trace-out"], &["--quiet"]).is_ok());
        assert_eq!(a.value_of("--trace-out").unwrap(), Some("trace.jsonl"));
        // A following flag is a missing value, not a file name.
        let b = args(&["--trace-out", "--quiet"]);
        assert!(b
            .value_of("--trace-out")
            .unwrap_err()
            .contains("requires a value"));
        // A typo stays a hard error — no silent untraced run.
        let c = args(&["--trace-ou", "trace.jsonl"]);
        assert!(c
            .reject_unknown(&["--trace-out"], &[])
            .unwrap_err()
            .contains("--trace-ou"));
        // Relative paths land in the bundle directory, absolute ones win.
        let out = std::path::Path::new("bundle");
        assert_eq!(resolve_out(out, "trace.jsonl"), out.join("trace.jsonl"));
        assert_eq!(
            resolve_out(out, "/tmp/t.json"),
            PathBuf::from("/tmp/t.json")
        );
    }

    #[test]
    fn serve_flags_parse_strictly() {
        let a = args(&[
            "--campaign",
            "out",
            "--addr",
            "127.0.0.1:8080",
            "--threads",
            "2",
            "--addr-file",
            "addr.txt",
            "--quiet",
        ]);
        assert!(a
            .reject_unknown(
                &[
                    "--campaign",
                    "--addr",
                    "--threads",
                    "--trace",
                    "--addr-file",
                    "--store"
                ],
                &["--quiet"],
            )
            .is_ok());
        assert_eq!(a.value_of("--addr").unwrap(), Some("127.0.0.1:8080"));
        assert_eq!(
            a.value_of("--threads").unwrap().map(parse_threads),
            Some(Ok(2))
        );
        // --threads rejects zero, words and fractions.
        for bad in ["0", "-1", "1.5", "lots", ""] {
            assert!(
                parse_threads(bad).unwrap_err().contains("--threads"),
                "{bad:?}"
            );
        }
        // A typo stays a hard error — no silently ignored flag.
        let b = args(&["--campaign", "out", "--adr", "x"]);
        assert!(b
            .reject_unknown(&["--campaign", "--addr"], &[])
            .unwrap_err()
            .contains("--adr"));
    }

    #[test]
    fn fetch_flags_parse_strictly() {
        let a = args(&["--addr", "127.0.0.1:9", "--path", "/metrics", "--post"]);
        assert!(a
            .reject_unknown(&["--addr", "--path", "--out"], &["--post"])
            .is_ok());
        assert_eq!(a.value_of("--path").unwrap(), Some("/metrics"));
        assert!(a.has("--post"));
        // Default path when the flag is absent.
        assert_eq!(args(&[]).value_of("--path").unwrap(), None);
    }

    #[test]
    fn cli_errors_carry_their_exit_codes() {
        assert_eq!(CliError::Missing("x".into()).exit_code(), 3);
        assert_eq!(CliError::Corrupt("x".into()).exit_code(), 4);
        assert_eq!(CliError::Other("x".into()).exit_code(), 1);
        // Plain strings classify as Other — the pre-existing exit 1.
        let e: CliError = "boom".into();
        assert_eq!(e, CliError::Other("boom".into()));
        assert_eq!(e.message(), "boom");
    }

    #[test]
    fn load_campaign_cli_classifies_missing_and_corrupt() {
        let missing = load_campaign_cli(std::path::Path::new("/nonexistent/campaign.json"));
        assert!(
            matches!(missing, Err(CliError::Missing(_))),
            "missing file classifies as Missing"
        );
        let dir = std::env::temp_dir().join(format!("topics-cli-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.json");
        std::fs::write(&path, "not a campaign").unwrap();
        let corrupt = load_campaign_cli(&path);
        match corrupt {
            Err(CliError::Corrupt(msg)) => {
                assert!(msg.contains("campaign.json"), "{msg}");
            }
            other => panic!("corrupt store must classify as Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn doctor_flags_parse_strictly() {
        let a = args(&["--campaign", "out", "--trace", "t.jsonl", "--top", "5"]);
        assert!(a
            .reject_unknown(&["--campaign", "--trace", "--top"], &[])
            .is_ok());
        assert_eq!(a.value_of("--campaign").unwrap(), Some("out"));
        assert_eq!(a.value_of("--trace").unwrap(), Some("t.jsonl"));
        assert_eq!(
            a.value_of("--top").unwrap().map(parse_top).transpose(),
            Ok(Some(5))
        );
        // --top rejects zero, words and fractions.
        for bad in ["0", "-1", "2.5", "lots", ""] {
            assert!(parse_top(bad).unwrap_err().contains("--top"), "{bad:?}");
        }
        // Unknown doctor flags are rejected, same as every subcommand.
        let b = args(&["--campaign", "out", "--trase", "t.jsonl"]);
        assert!(b
            .reject_unknown(&["--campaign", "--trace", "--top"], &[])
            .unwrap_err()
            .contains("--trase"));
        // A campaign file path passes through; only directories gain
        // the campaign.json suffix (exercised with a real temp dir).
        assert_eq!(
            resolve_campaign("bundle/campaign.json"),
            PathBuf::from("bundle/campaign.json")
        );
        let dir = std::env::temp_dir();
        assert_eq!(
            resolve_campaign(dir.to_str().unwrap()),
            dir.join("campaign.json")
        );
    }

    #[test]
    fn alloc_stats_is_a_bare_crawl_flag() {
        let a = args(&["--alloc-stats", "--trace-out", "t.jsonl"]);
        assert!(a
            .reject_unknown(&["--trace-out"], &["--alloc-stats"])
            .is_ok());
        assert!(a.has("--alloc-stats"));
        // A typo stays a hard error — no silent uncounted run.
        let b = args(&["--alloc-stat"]);
        assert!(b
            .reject_unknown(&[], &["--alloc-stats"])
            .unwrap_err()
            .contains("--alloc-stat"));
    }

    #[test]
    fn memprofile_flags_parse_strictly() {
        let a = args(&["--trace", "t.jsonl", "--top", "7"]);
        assert!(a
            .reject_unknown(&["--trace", "--campaign", "--top"], &[])
            .is_ok());
        assert_eq!(a.value_of("--trace").unwrap(), Some("t.jsonl"));
        assert_eq!(
            a.value_of("--top").unwrap().map(parse_top).transpose(),
            Ok(Some(7))
        );
        // --campaign DIR resolves to trace.jsonl next to campaign.json.
        let dir = std::env::temp_dir();
        assert_eq!(
            resolve_campaign(dir.to_str().unwrap()).with_file_name("trace.jsonl"),
            dir.join("trace.jsonl")
        );
        // Unknown flags stay hard errors.
        let b = args(&["--trase", "t.jsonl"]);
        assert!(b
            .reject_unknown(&["--trace", "--campaign", "--top"], &[])
            .unwrap_err()
            .contains("--trase"));
    }

    #[test]
    fn store_flag_parses_strictly() {
        assert_eq!(parse_store(&args(&[])).unwrap(), StoreKind::Json);
        assert_eq!(
            parse_store(&args(&["--store", "json"])).unwrap(),
            StoreKind::Json
        );
        assert_eq!(
            parse_store(&args(&["--store", "columnar"])).unwrap(),
            StoreKind::Columnar
        );
        // Unknown backends and missing values are hard errors — never a
        // silent fallback to JSON.
        let err = parse_store(&args(&["--store", "parquet"])).unwrap_err();
        assert!(err.contains("--store"), "{err}");
        let err = parse_store(&args(&["--store", "--quiet"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        // A typo'd flag name is rejected by the crawl/merge flag sets.
        let a = args(&["--stor", "columnar"]);
        assert!(a
            .reject_unknown(&["--store"], &[])
            .unwrap_err()
            .contains("--stor"));
    }

    #[test]
    fn campaign_resolution_prefers_an_existing_store() {
        // A file path passes through untouched.
        assert_eq!(
            resolve_campaign_with("bundle/campaign.col", None),
            PathBuf::from("bundle/campaign.col")
        );
        // A directory with only campaign.col resolves to it...
        let dir = std::env::temp_dir().join(format!("topics-lab-resolve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("campaign.col"), b"x").unwrap();
        let dirs = dir.to_str().unwrap();
        assert_eq!(resolve_campaign(dirs), dir.join("campaign.col"));
        // ...until campaign.json appears (the compatibility default),
        // and an explicit --store always wins.
        std::fs::write(dir.join("campaign.json"), b"{}").unwrap();
        assert_eq!(resolve_campaign(dirs), dir.join("campaign.json"));
        assert_eq!(
            resolve_campaign_with(dirs, Some(StoreKind::Columnar)),
            dir.join("campaign.col")
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_spec_parses_strictly() {
        assert_eq!(parse_shard_spec("1/1"), Ok((0, 1)));
        assert_eq!(parse_shard_spec("2/4"), Ok((1, 4)));
        assert_eq!(parse_shard_spec("16/16"), Ok((15, 16)));
        // Zero-based, out-of-range, zero shards, and malformed specs
        // are all hard errors — never a silently empty stripe.
        for bad in [
            "0/4", "5/4", "1/0", "0/0", "1", "1/", "/4", "a/b", "1/4/2", "-1/4", "",
        ] {
            let err = parse_shard_spec(bad).unwrap_err();
            assert!(err.contains("--shard"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn shard_flags_parse_strictly() {
        // The shard flag set accepts the shared campaign flags.
        let a = args(&["--shard", "2/4", "--sites", "500", "--quiet"]);
        assert!(a
            .reject_unknown(&["--shard", "--sites"], &["--quiet"])
            .is_ok());
        assert_eq!(a.value_of("--shard").unwrap(), Some("2/4"));
        // A typo stays a hard error — no silent unsharded run.
        let b = args(&["--shar", "2/4"]);
        assert!(b
            .reject_unknown(&["--shard"], &[])
            .unwrap_err()
            .contains("--shar"));
        // A following flag is a missing value, not a shard spec.
        let c = args(&["--shard", "--quiet"]);
        assert!(c
            .value_of("--shard")
            .unwrap_err()
            .contains("requires a value"));
        // Crawl-only flags are rejected by the shard flag set.
        let d = args(&["--shard", "1/2", "--trace-out", "t.jsonl"]);
        assert!(d
            .reject_unknown(&["--shard"], &[])
            .unwrap_err()
            .contains("--trace-out"));
    }

    #[test]
    fn merge_flags_parse_strictly() {
        let a = args(&["--segments", "shards", "--out", "bundle"]);
        assert!(a.reject_unknown(&["--segments", "--out"], &[]).is_ok());
        assert_eq!(a.value_of("--segments").unwrap(), Some("shards"));
        assert_eq!(a.value_of("--out").unwrap(), Some("bundle"));
        // A typo stays a hard error — no merge of the wrong directory.
        let b = args(&["--segment", "shards"]);
        assert!(b
            .reject_unknown(&["--segments", "--out"], &[])
            .unwrap_err()
            .contains("--segment"));
        // A following flag is a missing value, not a directory.
        let c = args(&["--segments", "--out"]);
        assert!(c
            .value_of("--segments")
            .unwrap_err()
            .contains("requires a value"));
        // Stray positionals are rejected, same as every subcommand.
        let d = args(&["shards"]);
        assert!(d
            .reject_unknown(&["--segments", "--out"], &[])
            .unwrap_err()
            .contains("unexpected argument"));
    }

    #[test]
    fn simulate_flags_parse_strictly() {
        let a = args(&["--users", "5000", "--epochs", "12", "--noise", "0.1"]);
        assert_eq!(
            a.value_of("--users")
                .unwrap()
                .map(|s| parse_sim_count("--users", s))
                .transpose()
                .unwrap(),
            Some(5000)
        );
        assert_eq!(a.value_of("--epochs").unwrap(), Some("12"));
        // Shape flags reject zero and garbage — a zero-user simulation
        // must fail at the flag, not deep inside the engine.
        assert!(parse_sim_count("--users", "0")
            .unwrap_err()
            .contains("--users"));
        assert!(parse_sim_count("--sample", "lots").is_err());
        // A typo'd flag is a hard error, same as every subcommand.
        let b = args(&["--user", "5000"]);
        assert!(b
            .reject_unknown(&["--users", "--epochs"], &[])
            .unwrap_err()
            .contains("--user"));
    }

    #[test]
    fn unknown_flags_are_rejected_not_ignored() {
        // A typo'd fault flag must not silently run a fault-free crawl.
        let a = args(&["--fault-profil", "heavy"]);
        let err = a.reject_unknown(&["--fault-profile"], &[]).unwrap_err();
        assert!(err.contains("--fault-profil"), "{err}");

        let ok = args(&["--fault-profile", "heavy", "--quiet"]);
        assert!(ok
            .reject_unknown(&["--fault-profile"], &["--quiet"])
            .is_ok());
    }

    #[test]
    fn stray_positionals_and_flag_valued_flags_are_rejected() {
        let a = args(&["extra"]);
        assert!(a
            .reject_unknown(&["--campaign"], &[])
            .unwrap_err()
            .contains("unexpected argument"));
        // `--campaign --full-scale` leaves --full-scale as a bare flag
        // (known), and value_of then reports the missing value.
        let b = args(&["--campaign", "--full-scale"]);
        assert!(b.reject_unknown(&["--campaign"], &["--full-scale"]).is_ok());
        assert!(b
            .value_of("--campaign")
            .unwrap_err()
            .contains("requires a value"));
    }
}
