//! `topics-lab` — the command-line front end of the reproduction.
//!
//! ```text
//! topics-lab crawl   [--sites N] [--seed S] [--full] [--out DIR]
//!                    [--allow-list corrupted|healthy|fail-closed]
//!                    [--reject] [--vantage eu|us] [--quiet]
//!                    [--metrics-out FILE] [--events-out FILE]
//!     Generate a synthetic web, run the Before/After-Accept campaign,
//!     and write the artefact bundle (campaign.json, report, comparison,
//!     per-figure CSVs) to DIR (default: ./topics-lab-out). With
//!     --metrics-out / --events-out, also write the Prometheus-style
//!     metrics snapshot and the JSONL event stream (relative paths land
//!     next to campaign.json).
//!
//! topics-lab report  --campaign DIR/campaign.json
//!     Re-render the evaluation report from a dumped campaign.
//!
//! topics-lab metrics --campaign DIR/campaign.json
//!     Re-derive the metrics snapshot from a dumped campaign and print
//!     it in Prometheus text format.
//!
//! topics-lab compare --campaign DIR/campaign.json [--full-scale]
//!     Print the paper-vs-measured table from a dumped campaign.
//!
//! topics-lab dossier --campaign DIR/campaign.json --cp DOMAIN
//!     Print everything the campaign knows about one calling party.
//! ```
//!
//! Progress logging goes through the structured event log (echoed to
//! stderr); `--quiet` or `TOPICS_LOG=off` silences it.

use std::path::PathBuf;
use std::process::ExitCode;
use topics_core::crawler::campaign::AllowListSetup;
use topics_core::export::{load_campaign, write_bundle};
use topics_core::obs::Obs;
use topics_core::{
    comparison_rows, evaluate, metrics_snapshot_of, render_comparison, Lab, LabConfig,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  topics-lab crawl   [--sites N] [--seed S] [--full] [--out DIR] [--allow-list corrupted|healthy|fail-closed] [--reject] [--vantage eu|us] [--quiet] [--metrics-out FILE] [--events-out FILE]\n  topics-lab report  --campaign FILE\n  topics-lab metrics --campaign FILE\n  topics-lab compare --campaign FILE [--full-scale]\n  topics-lab dossier --campaign FILE --cp DOMAIN"
    );
    ExitCode::from(2)
}

/// Tiny flag parser: `--name value` pairs plus bare `--flags`.
struct Args {
    rest: Vec<String>,
}

impl Args {
    fn new(rest: Vec<String>) -> Args {
        Args { rest }
    }

    /// The value following `--name`, if the flag is present. A following
    /// token that is itself a flag does not count — `--out --reject`
    /// is an error, not an output directory named `--reject`.
    fn value_of(&self, name: &str) -> Result<Option<&str>, String> {
        let Some(i) = self.rest.iter().position(|a| a == name) else {
            return Ok(None);
        };
        match self.rest.get(i + 1).map(String::as_str) {
            Some(v) if !v.starts_with("--") => Ok(Some(v)),
            _ => Err(format!("flag {name} requires a value")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.rest.iter().any(|a| a == name)
    }
}

/// Resolve an output path: relative paths land next to the bundle.
fn resolve_out(out_dir: &std::path::Path, value: &str) -> PathBuf {
    let p = PathBuf::from(value);
    if p.is_absolute() {
        p
    } else {
        out_dir.join(p)
    }
}

fn cmd_crawl(args: &Args) -> Result<(), String> {
    let seed: u64 = args
        .value_of("--seed")?
        .map(|s| s.parse().map_err(|_| format!("bad --seed {s:?}")))
        .transpose()?
        .unwrap_or(2024);
    let full = args.has("--full");
    let sites: usize = if full {
        50_000
    } else {
        args.value_of("--sites")?
            .map(|s| s.parse().map_err(|_| format!("bad --sites {s:?}")))
            .transpose()?
            .unwrap_or(5_000)
    };
    let out = PathBuf::from(args.value_of("--out")?.unwrap_or("topics-lab-out"));
    let allow_list = match args.value_of("--allow-list")?.unwrap_or("corrupted") {
        "corrupted" => AllowListSetup::CorruptedFailOpen,
        "healthy" => AllowListSetup::Healthy,
        "fail-closed" => AllowListSetup::CorruptedFailClosed,
        other => return Err(format!("unknown --allow-list {other:?}")),
    };

    let vantage = match args.value_of("--vantage")?.unwrap_or("eu") {
        "eu" => topics_core::net::http::Vantage::Europe,
        "us" => topics_core::net::http::Vantage::UnitedStates,
        other => return Err(format!("unknown --vantage {other:?} (eu|us)")),
    };
    let consent_action = if args.has("--reject") {
        topics_core::crawler::ConsentAction::Reject
    } else {
        topics_core::crawler::ConsentAction::Accept
    };
    let metrics_out = args
        .value_of("--metrics-out")?
        .map(|v| resolve_out(&out, v));
    let events_out = args.value_of("--events-out")?.map(|v| resolve_out(&out, v));

    let obs = if args.has("--quiet") {
        Obs::new()
    } else {
        Obs::with_stderr_echo()
    };

    obs.events.info(
        "world-gen",
        vec![("sites".into(), sites.into()), ("seed".into(), seed.into())],
    );
    let mut config = LabConfig::quick(seed, sites).with_allow_list(allow_list);
    config.campaign.vantage = vantage;
    config.campaign.consent_action = consent_action;
    let lab = {
        let _span = obs.phase("world-gen");
        Lab::new(config)
    };

    obs.events.info("crawl-start", vec![]);
    let run = lab.run_observed(&obs);
    obs.events.info(
        "crawl-done",
        vec![
            ("visited".into(), run.visited_count().into()),
            ("accepted".into(), run.accepted_count().into()),
        ],
    );

    let eval = {
        let _span = obs.phase("analysis");
        evaluate(&run.outcome)
    };
    {
        let _span = obs.phase("export");
        write_bundle(&out, &run.outcome, &eval, sites >= 50_000)
            .map_err(|e| format!("writing bundle to {}: {e}", out.display()))?;
    }

    if let Some(path) = &metrics_out {
        // Snapshot at write time so every phase gauge is included.
        let prom = obs.metrics.snapshot().render_prometheus();
        std::fs::write(path, prom)
            .map_err(|e| format!("writing metrics to {}: {e}", path.display()))?;
    }
    if let Some(path) = &events_out {
        std::fs::write(path, obs.events.to_jsonl())
            .map_err(|e| format!("writing events to {}: {e}", path.display()))?;
    }

    println!("{}", eval.render_report());
    println!("artefact bundle written to {}", out.display());
    if let Some(p) = &metrics_out {
        println!("metrics snapshot written to {}", p.display());
    }
    if let Some(p) = &events_out {
        println!("event stream written to {}", p.display());
    }
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let path = args
        .value_of("--campaign")?
        .ok_or("report needs --campaign FILE")?;
    let outcome = load_campaign(&PathBuf::from(path)).map_err(|e| e.to_string())?;
    let eval = evaluate(&outcome);
    println!("{}", eval.render_report());
    Ok(())
}

fn cmd_metrics(args: &Args) -> Result<(), String> {
    let path = args
        .value_of("--campaign")?
        .ok_or("metrics needs --campaign FILE")?;
    let outcome = load_campaign(&PathBuf::from(path)).map_err(|e| e.to_string())?;
    print!("{}", metrics_snapshot_of(&outcome).render_prometheus());
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let path = args
        .value_of("--campaign")?
        .ok_or("compare needs --campaign FILE")?;
    let outcome = load_campaign(&PathBuf::from(path)).map_err(|e| e.to_string())?;
    let eval = evaluate(&outcome);
    let full = args.has("--full-scale") || outcome.sites.len() >= 50_000;
    println!("{}", render_comparison(&comparison_rows(&eval, full)));
    Ok(())
}

fn cmd_dossier(args: &Args) -> Result<(), String> {
    let path = args
        .value_of("--campaign")?
        .ok_or("dossier needs --campaign FILE")?;
    let cp = args.value_of("--cp")?.ok_or("dossier needs --cp DOMAIN")?;
    let cp = topics_core::net::Domain::parse(cp).map_err(|e| format!("bad --cp: {e}"))?;
    let outcome = load_campaign(&PathBuf::from(path)).map_err(|e| e.to_string())?;
    let ds = topics_core::analysis::dataset::Datasets::new(&outcome);
    println!(
        "{}",
        topics_core::analysis::dossier::dossier(&ds, &cp).render()
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        return usage();
    };
    let args = Args::new(argv.collect());
    let result = match cmd.as_str() {
        "crawl" => cmd_crawl(&args),
        "report" => cmd_report(&args),
        "metrics" => cmd_metrics(&args),
        "compare" => cmd_compare(&args),
        "dossier" => cmd_dossier(&args),
        "--help" | "-h" | "help" => return usage(),
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
