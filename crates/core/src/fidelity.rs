//! Measurement fidelity — crawler measurements vs world ground truth.
//!
//! On the real web the paper can never know what it missed; on the
//! synthetic web the generator's ground truth is available, so the
//! measurement error of the whole pipeline is itself measurable: how
//! often does Priv-Accept see a banner that is really there, how much of
//! a platform's true footprint does presence detection recover, and how
//! far are the measured A/B fractions from the platforms' true arms?
//! This is the error bar the paper's numbers implicitly carry.

use topics_analysis::dataset::Datasets;
use topics_analysis::report::{pct, Table};
use topics_crawler::record::CampaignOutcome;
use topics_webgen::{Experiment, World};

/// Banner-detection quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BannerFidelity {
    /// Visited sites whose spec shows a banner to this campaign.
    pub with_banner: usize,
    /// …of which the crawler detected the banner container.
    pub detected: usize,
    /// Visited sites without a banner where the crawler reported one.
    pub false_positives: usize,
    /// Sites with a detected banner whose accept button was clicked.
    pub accepted_of_detected: usize,
}

impl BannerFidelity {
    /// Detection recall.
    pub fn recall(&self) -> f64 {
        if self.with_banner == 0 {
            0.0
        } else {
            self.detected as f64 / self.with_banner as f64
        }
    }
}

/// One platform's presence/arm estimation quality.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformFidelity {
    /// Platform domain.
    pub domain: String,
    /// D_AA sites where the spec embeds the platform.
    pub truly_embedded: usize,
    /// …of which presence detection found it.
    pub observed: usize,
    /// The platform's true site-level experiment arm, if any.
    pub true_fraction: Option<f64>,
    /// The measured enabled fraction over observed sites.
    pub measured_fraction: f64,
}

impl PlatformFidelity {
    /// Presence recall over D_AA.
    pub fn presence_recall(&self) -> f64 {
        if self.truly_embedded == 0 {
            0.0
        } else {
            self.observed as f64 / self.truly_embedded as f64
        }
    }

    /// |measured − true| arm estimation error, when an arm exists.
    pub fn fraction_error(&self) -> Option<f64> {
        self.true_fraction
            .map(|f| (self.measured_fraction - f).abs())
    }
}

/// The full fidelity report.
#[derive(Debug, Clone)]
pub struct FidelityReport {
    /// Banner detection quality over D_BA.
    pub banner: BannerFidelity,
    /// Per-platform presence/arm quality (named active platforms with
    /// enough D_AA presence to estimate a fraction).
    pub platforms: Vec<PlatformFidelity>,
}

/// Compare a campaign against the world it crawled. The campaign must
/// have been run on `world` (same seed/config); a mismatch yields
/// nonsense numbers, not errors.
pub fn fidelity(world: &World, outcome: &CampaignOutcome) -> FidelityReport {
    let ds = Datasets::new(outcome);

    // ---- banner detection --------------------------------------------
    let mut banner = BannerFidelity {
        with_banner: 0,
        detected: 0,
        false_positives: 0,
        accepted_of_detected: 0,
    };
    for site in &outcome.sites {
        let Some(before) = &site.before else { continue };
        let spec = &world.sites()[site.rank];
        // The EU crawler sees every banner (geo-targeting only hides
        // them from elsewhere).
        if spec.has_banner {
            banner.with_banner += 1;
            if before.banner_found {
                banner.detected += 1;
                if site.accepted() {
                    banner.accepted_of_detected += 1;
                }
            }
        } else if before.banner_found {
            banner.false_positives += 1;
        }
    }

    // ---- platform presence & arms --------------------------------------
    let mut platforms = Vec::new();
    for (idx, p) in world.registry().iter().enumerate() {
        if p.base_presence <= 0.0 {
            continue;
        }
        let mut truly_embedded = 0usize;
        let mut observed = 0usize;
        let mut called = 0usize;
        for site in &outcome.sites {
            let Some(after) = &site.after else { continue };
            let spec = &world.sites()[site.rank];
            if spec.platforms.iter().any(|(i, _)| *i == idx) {
                truly_embedded += 1;
                if after.has_party(&p.domain) {
                    observed += 1;
                    if after
                        .topics_calls
                        .iter()
                        .any(|c| c.permitted() && c.caller_site == p.domain)
                    {
                        called += 1;
                    }
                }
            }
        }
        if truly_embedded < 30 {
            continue; // not enough signal to judge estimation quality
        }
        // Only platforms whose integration is live at the crawl date
        // have a measurable arm — the future cohort is configured but
        // dark, so it measures (correctly) as 0%.
        let crawl_day = outcome.started.millis() / topics_net::clock::MILLIS_PER_DAY;
        let true_fraction = match p.experiment {
            Experiment::SiteFraction(f) if p.is_active_at(crawl_day) => Some(f),
            _ => None,
        };
        platforms.push(PlatformFidelity {
            domain: p.domain.as_str().to_owned(),
            truly_embedded,
            observed,
            true_fraction,
            measured_fraction: if observed == 0 {
                0.0
            } else {
                called as f64 / observed as f64
            },
        });
    }
    platforms.sort_by_key(|p| std::cmp::Reverse(p.truly_embedded));

    let _ = ds; // Datasets kept for future cross-checks
    FidelityReport { banner, platforms }
}

impl FidelityReport {
    /// Mean absolute arm-estimation error across platforms with an arm.
    pub fn mean_fraction_error(&self) -> f64 {
        let errors: Vec<f64> = self
            .platforms
            .iter()
            .filter_map(PlatformFidelity::fraction_error)
            .collect();
        if errors.is_empty() {
            0.0
        } else {
            errors.iter().sum::<f64>() / errors.len() as f64
        }
    }

    /// Render as text.
    pub fn render(&self) -> String {
        let mut out = String::from("== Measurement fidelity (crawler vs ground truth) ==\n");
        let b = &self.banner;
        out.push_str(&format!(
            "banner detection: {} / {} real banners found ({}) — {} false positives\n",
            b.detected,
            b.with_banner,
            pct(b.recall()),
            b.false_positives
        ));
        out.push_str(&format!(
            "accepted {} of {} detected banners ({})\n\n",
            b.accepted_of_detected,
            b.detected,
            pct(if b.detected == 0 {
                0.0
            } else {
                b.accepted_of_detected as f64 / b.detected as f64
            })
        ));
        let mut t = Table::new([
            "platform",
            "embedded (truth)",
            "observed",
            "recall",
            "true arm",
            "measured",
            "error",
        ]);
        for p in self.platforms.iter().take(12) {
            t.row(vec![
                p.domain.clone(),
                p.truly_embedded.to_string(),
                p.observed.to_string(),
                pct(p.presence_recall()),
                p.true_fraction.map(pct).unwrap_or_else(|| "-".into()),
                pct(p.measured_fraction),
                p.fraction_error()
                    .map(|e| format!("{e:.3}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "mean |measured − true| arm error: {:.3}\n",
            self.mean_fraction_error()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lab, LabConfig};

    #[test]
    fn fidelity_on_a_small_campaign() {
        let lab = Lab::new(LabConfig::quick(91, 1_200).with_threads(4));
        let outcome = lab.run();
        let report = fidelity(&lab.world, &outcome);

        // Banner containers are plain markup: detection recall is ~100%.
        assert!(
            report.banner.recall() > 0.97,
            "banner recall {}",
            report.banner.recall()
        );
        assert_eq!(report.banner.false_positives, 0);
        // Acceptance is bounded by language support + quirky phrasing.
        assert!(report.banner.accepted_of_detected < report.banner.detected);

        // Presence over After-Accept visits is complete: everything the
        // spec embeds gets loaded and recorded post-consent.
        for p in &report.platforms {
            assert!(
                p.presence_recall() > 0.95,
                "{} presence recall {}",
                p.domain,
                p.presence_recall()
            );
        }

        // Arm estimation error is small for well-sampled platforms.
        let doubleclick = report
            .platforms
            .iter()
            .find(|p| p.domain == "doubleclick.net")
            .expect("doubleclick is everywhere");
        assert_eq!(doubleclick.true_fraction, Some(0.33));
        assert!(
            doubleclick.fraction_error().unwrap() < 0.08,
            "doubleclick arm error {:?}",
            doubleclick.fraction_error()
        );
        assert!(report.mean_fraction_error() < 0.15);

        let text = report.render();
        assert!(text.contains("banner detection"));
        assert!(text.contains("doubleclick.net"));
    }
}
