//! `topics-lab simulate` orchestration: the population-scale
//! simulation engine of [`topics_baseline::simulate`] wired into the
//! repo's observability spine.
//!
//! The baseline crate stays obs-free (its engine is a pure function of
//! the config); this module wraps each stage in a phase span —
//! `sim-universe`, `sim-advance`, `sim-kanon`, `sim-attack` — so wall
//! time and (under `--alloc-stats`) heap attribution land in the trace
//! and metrics exactly like the crawl phases, writes the curve
//! artefacts, and publishes the simulation counters the integration
//! tests reconcile against.

use std::path::Path;
use topics_baseline::simulate::{self, SimConfig, SimRun};
use topics_obs::{MetricsRegistry, Obs};

/// File name of the k-anonymity curve CSV.
pub const SIM_KANON_FILE: &str = "sim_kanon.csv";
/// File name of the re-identification curve CSV.
pub const SIM_REIDENT_FILE: &str = "sim_reident.csv";
/// File name of the human-readable simulation report.
pub const SIM_REPORT_FILE: &str = "sim_report.txt";

/// Run the whole simulation under phase observation: universe →
/// arena advancement → k-anonymity curve → collection + linkage
/// attack. The artefacts depend only on `(cfg, threads ≥ 1)` — and
/// not on the `threads` value.
pub fn run_simulation(cfg: &SimConfig, threads: usize, obs: &Obs) -> Result<SimRun, String> {
    cfg.validate()?;
    let universe = {
        let _span = obs.phase("sim-universe");
        simulate::build_universe(cfg)
    };
    let arena = {
        let _span = obs.phase("sim-advance");
        simulate::build_arena(cfg, &universe, threads)?
    };
    let kanon = {
        let _span = obs.phase("sim-kanon");
        simulate::kanon_curve(&arena, threads)
    };
    let (reident, stats) = {
        let _span = obs.phase("sim-attack");
        simulate::reident_curve(cfg, &universe, &arena, threads)
    };
    Ok(SimRun {
        config: *cfg,
        kanon,
        reident,
        stats,
        visits_total: arena.visits_total(),
        arena_bytes: arena.heap_bytes(),
    })
}

/// Write the simulation artefacts — both curve CSVs plus the report —
/// into `dir` (created if absent).
pub fn write_sim_artefacts(dir: &Path, run: &SimRun) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    for (name, body) in [
        (SIM_KANON_FILE, simulate::kanon_csv(&run.kanon)),
        (SIM_REIDENT_FILE, simulate::reident_csv(&run.reident)),
        (SIM_REPORT_FILE, simulate::render_sim_report(run)),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, body).map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    Ok(())
}

/// Publish the simulation's shape and counters into a metrics
/// registry. `sim_api_calls_total` reconciles exactly against
/// `users × context × window × 2` and `sim_correct_total` against the
/// re-identification CSV's `correct` column — the `doctor`-style
/// cross-checks the simulate integration tests assert.
pub fn publish_sim_metrics(run: &SimRun, metrics: &MetricsRegistry) {
    let c = &run.config;
    metrics.gauge("sim_users").set(c.users as i64);
    metrics.gauge("sim_epochs").set(c.epochs as i64);
    metrics.gauge("sim_window").set(c.window as i64);
    metrics
        .gauge("sim_sample_users")
        .set(c.sample.min(c.users) as i64);
    metrics.gauge("sim_arena_bytes").set(run.arena_bytes as i64);
    metrics.counter("sim_visits_total").add(run.visits_total);
    metrics
        .counter("sim_api_calls_total")
        .add(run.stats.api_calls);
    metrics
        .counter("sim_topics_returned_total")
        .add(run.stats.topics_returned);
    metrics
        .counter("sim_noised_topics_total")
        .add(run.stats.noised_topics);
    metrics.counter("sim_queries_total").add(run.stats.queries);
    metrics.counter("sim_correct_total").add(run.stats.correct);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SimConfig {
        SimConfig {
            sites: 200,
            visits_per_epoch: 10,
            context_sites: 8,
            sample: 100,
            ..SimConfig::new(5, 100, 5)
        }
    }

    #[test]
    fn phases_land_in_the_trace() {
        let obs = Obs::new().with_trace();
        let run = run_simulation(&tiny(), 2, &obs).unwrap();
        assert_eq!(run.kanon.len(), 5);
        let trace = obs.trace.finish();
        for phase in ["sim-universe", "sim-advance", "sim-kanon", "sim-attack"] {
            assert_eq!(trace.count_named(phase), 1, "{phase}");
        }
        let report = crate::doctor::diagnose_trace(&trace, 5);
        assert!(report.is_healthy(), "{:?}", report.violations());
        assert!(report.render().contains("sim-advance"));
    }

    #[test]
    fn artefacts_write_and_metrics_reconcile() {
        let obs = Obs::new();
        let cfg = tiny();
        let run = run_simulation(&cfg, 2, &obs).unwrap();
        publish_sim_metrics(&run, &obs.metrics);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.gauge("sim_users"), 100);
        assert_eq!(
            snap.counter("sim_api_calls_total"),
            cfg.users as u64 * cfg.context_sites as u64 * cfg.window * 2
        );
        assert_eq!(
            snap.counter("sim_correct_total"),
            run.reident.iter().map(|r| r.correct).sum::<u64>()
        );
        assert_eq!(
            snap.counter("sim_queries_total"),
            cfg.sample.min(cfg.users) as u64 * cfg.window
        );
        assert!(snap.counter("sim_visits_total") > 0);

        let dir = std::env::temp_dir().join(format!("topics-sim-art-{}", std::process::id()));
        write_sim_artefacts(&dir, &run).unwrap();
        let kanon = std::fs::read_to_string(dir.join(SIM_KANON_FILE)).unwrap();
        assert!(kanon.starts_with("epoch,"));
        let reident = std::fs::read_to_string(dir.join(SIM_REIDENT_FILE)).unwrap();
        assert_eq!(reident.lines().count(), 1 + cfg.window as usize);
        let report = std::fs::read_to_string(dir.join(SIM_REPORT_FILE)).unwrap();
        assert!(report.contains("100 users × 5 epochs"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_config_is_rejected_before_any_phase() {
        let obs = Obs::new().with_trace();
        let bad = SimConfig { users: 1, ..tiny() };
        assert!(run_simulation(&bad, 2, &obs).is_err());
        assert_eq!(obs.trace.finish().count_named("sim-universe"), 0);
    }
}
