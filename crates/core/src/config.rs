//! Configuration presets.

use topics_crawler::campaign::{AllowListSetup, CampaignConfig};
use topics_webgen::WorldConfig;

/// Everything needed to run one lab session: the world to generate and
/// the campaign to run against it.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// The synthetic web.
    pub world: WorldConfig,
    /// The crawl.
    pub campaign: CampaignConfig,
}

impl LabConfig {
    /// The paper's setup at full scale: 50,000 sites, the allow-list
    /// corrupted on purpose, Before/After-Accept protocol.
    pub fn paper(seed: u64) -> LabConfig {
        LabConfig {
            world: WorldConfig::paper(seed),
            campaign: CampaignConfig::default(),
        }
    }

    /// A scaled-down session (same behaviour rates, fewer sites) for
    /// tests, examples and quick iterations.
    pub fn quick(seed: u64, num_sites: usize) -> LabConfig {
        LabConfig {
            world: WorldConfig::scaled(seed, num_sites),
            campaign: CampaignConfig::default(),
        }
    }

    /// Switch the allow-list setup (e.g. the fixed-browser ablation).
    #[must_use]
    pub fn with_allow_list(mut self, setup: AllowListSetup) -> LabConfig {
        self.campaign.allow_list = setup;
        self
    }

    /// Limit crawl threads (useful under Criterion to reduce variance).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> LabConfig {
        self.campaign.threads = threads.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_is_full_scale_and_corrupted() {
        let c = LabConfig::paper(1);
        assert_eq!(c.world.num_sites, 50_000);
        assert_eq!(c.campaign.allow_list, AllowListSetup::CorruptedFailOpen);
    }

    #[test]
    fn builders_modify_only_their_field() {
        let c = LabConfig::quick(1, 100)
            .with_allow_list(AllowListSetup::Healthy)
            .with_threads(0);
        assert_eq!(c.world.num_sites, 100);
        assert_eq!(c.campaign.allow_list, AllowListSetup::Healthy);
        assert_eq!(c.campaign.threads, 1, "clamped to ≥1");
    }
}
