//! Configuration presets.

use topics_crawler::campaign::{AllowListSetup, CampaignConfig};
use topics_net::fault::FaultProfile;
use topics_webgen::WorldConfig;

/// Everything needed to run one lab session: the world to generate and
/// the campaign to run against it.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// The synthetic web.
    pub world: WorldConfig,
    /// The crawl.
    pub campaign: CampaignConfig,
}

impl LabConfig {
    /// The paper's setup at full scale: 50,000 sites, the allow-list
    /// corrupted on purpose, Before/After-Accept protocol.
    pub fn paper(seed: u64) -> LabConfig {
        LabConfig {
            world: WorldConfig::paper(seed),
            campaign: CampaignConfig::default(),
        }
    }

    /// A scaled-down session (same behaviour rates, fewer sites) for
    /// tests, examples and quick iterations.
    pub fn quick(seed: u64, num_sites: usize) -> LabConfig {
        LabConfig {
            world: WorldConfig::scaled(seed, num_sites),
            campaign: CampaignConfig::default(),
        }
    }

    /// Switch the allow-list setup (e.g. the fixed-browser ablation).
    #[must_use]
    pub fn with_allow_list(mut self, setup: AllowListSetup) -> LabConfig {
        self.campaign.allow_list = setup;
        self
    }

    /// Limit crawl threads (useful under Criterion to reduce variance).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> LabConfig {
        self.campaign.threads = threads.max(1);
        self
    }

    /// Limit attestation-probe threads (CLI `--probe-threads`); the
    /// probe results are byte-identical for every value.
    #[must_use]
    pub fn with_probe_threads(mut self, threads: usize) -> LabConfig {
        self.campaign.probe_threads = Some(threads.max(1));
        self
    }

    /// Memoise attestation-probe results across campaigns in this
    /// process (benches and ablation sweeps re-run the same world).
    #[must_use]
    pub fn with_probe_cache(mut self) -> LabConfig {
        self.campaign.probe_cache = true;
        self
    }

    /// Inject network faults at the given profile (CLI
    /// `--fault-profile`). The default is [`FaultProfile::off`], which
    /// leaves the campaign byte-identical to a fault-free build.
    #[must_use]
    pub fn with_fault_profile(mut self, profile: FaultProfile) -> LabConfig {
        self.campaign.fault = profile;
        self
    }

    /// Pin the fault-plan seed (CLI `--fault-seed`) instead of deriving
    /// it from the world seed — lets two runs share a world but differ
    /// in where faults land.
    #[must_use]
    pub fn with_fault_seed(mut self, fault_seed: u64) -> LabConfig {
        self.campaign.fault_seed = Some(fault_seed);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_is_full_scale_and_corrupted() {
        let c = LabConfig::paper(1);
        assert_eq!(c.world.num_sites, 50_000);
        assert_eq!(c.campaign.allow_list, AllowListSetup::CorruptedFailOpen);
    }

    #[test]
    fn builders_modify_only_their_field() {
        let c = LabConfig::quick(1, 100)
            .with_allow_list(AllowListSetup::Healthy)
            .with_threads(0);
        assert_eq!(c.world.num_sites, 100);
        assert_eq!(c.campaign.allow_list, AllowListSetup::Healthy);
        assert_eq!(c.campaign.threads, 1, "clamped to ≥1");
    }

    #[test]
    fn probe_builders_configure_the_campaign() {
        let c = LabConfig::quick(1, 100);
        assert_eq!(c.campaign.probe_threads, None, "defaults to crawl threads");
        assert!(!c.campaign.probe_cache, "cache defaults off");
        let c = c.with_probe_threads(0).with_probe_cache();
        assert_eq!(c.campaign.probe_threads, Some(1), "clamped to ≥1");
        assert!(c.campaign.probe_cache);
    }

    #[test]
    fn fault_builders_configure_the_campaign() {
        let c = LabConfig::quick(1, 100);
        assert!(c.campaign.fault.is_off(), "faults default to off");
        assert_eq!(c.campaign.fault_seed, None);
        let c = c
            .with_fault_profile(FaultProfile::light())
            .with_fault_seed(99);
        assert_eq!(c.campaign.fault, FaultProfile::light());
        assert_eq!(c.campaign.fault_seed, Some(99));
        assert!(c.campaign.fault_plan(1).is_active());
    }
}
