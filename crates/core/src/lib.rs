//! # topics-core — the top-level API of the reproduction
//!
//! One import gives a downstream user the whole pipeline of "A First
//! View of Topics API Usage in the Wild" (CoNEXT '24):
//!
//! ```no_run
//! use topics_core::{Lab, LabConfig};
//!
//! // Paper-scale: 50,000 sites, corrupted allow-list, Before/After visits.
//! let lab = Lab::new(LabConfig::paper(42));
//! let outcome = lab.run();
//! let eval = topics_core::evaluate(&outcome);
//! println!("{}", eval.render_report());
//! ```
//!
//! * [`config`] — presets bundling the world and campaign parameters.
//! * [`lab`] — world construction + campaign execution + evaluation.
//! * [`compare`] — the paper's reference numbers and paper-vs-measured
//!   comparison rows (the EXPERIMENTS.md source of truth).
//! * [`doctor`] — run-health report reconciling a saved campaign with
//!   its span trace (the `topics-lab doctor` subcommand).
//! * [`export`] — artefact bundles: the campaign dataset (JSON row
//!   store or columnar store, see [`export::StoreKind`]) plus one CSV
//!   per table/figure (the `topics-lab` CLI writes these).
//! * [`shard`] — sharded campaign execution (`topics-lab shard`) and
//!   the deterministic merge (`topics-lab merge`) back into a bundle
//!   byte-identical to a single-process run.
//! * [`serve`] — the live query + observability service
//!   (`topics-lab serve`): a dependency-free HTTP server answering
//!   per-figure queries off the resident columnar store, responses
//!   byte-identical to the offline artefacts, self-observed at
//!   `/metrics`.
//! * [`sim`] — the population-scale privacy testbed
//!   (`topics-lab simulate`): arena-backed million-user simulation with
//!   k-anonymity and re-identification curve artefacts, observed phase
//!   by phase.
//! * [`fidelity`] — crawler measurements vs generator ground truth: the
//!   pipeline's own measurement error, quantifiable only in simulation.
//!
//! The underlying crates are re-exported for direct access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod config;
pub mod doctor;
pub mod export;
pub mod fidelity;
pub mod lab;
pub mod serve;
pub mod shard;
pub mod sim;

pub use compare::{comparison_rows, render_comparison, ComparisonRow};
pub use config::LabConfig;
pub use doctor::{
    diagnose, diagnose_trace, verify_columnar, verify_segments, ColumnarCheck, DoctorReport,
    TraceReport,
};
pub use export::{load_campaign, write_bundle, StoreKind};
pub use fidelity::{fidelity, FidelityReport};
pub use lab::{evaluate, metrics_snapshot_of, CampaignRun, Evaluation, Lab};
pub use serve::{
    http_fetch, HttpResponse, QueryService, ServeConfig, ServeError, Server, ServerHandle,
    API_ENDPOINTS,
};
pub use shard::{
    merge_dir, merge_dir_columnar, read_segment, run_shard, segment_file_name, segment_paths,
    write_segment, Merged, MergedColumnar, MERGE_RULES,
};
pub use sim::{
    publish_sim_metrics, run_simulation, write_sim_artefacts, SIM_KANON_FILE, SIM_REIDENT_FILE,
    SIM_REPORT_FILE,
};

pub use topics_analysis as analysis;
pub use topics_baseline as baseline;
pub use topics_browser as browser;
pub use topics_crawler as crawler;
pub use topics_net as net;
pub use topics_obs as obs;
pub use topics_taxonomy as taxonomy;
pub use topics_webgen as webgen;
