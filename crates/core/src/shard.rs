//! Sharded campaign execution and the deterministic merge.
//!
//! A campaign over `num_sites` ranks can be split into `N` rank-stripe
//! shards ([`topics_crawler::shard::ShardPlan`]) and run as independent
//! processes: each shard crawls only its stripe, probes only the
//! parties its stripe encountered (plus the allow-list), and writes a
//! checksummed record segment (`shard-K-of-N.seg`). [`merge_dir`]
//! reassembles the segments into one [`CampaignOutcome`], metrics
//! snapshot, and stripped trace that are **byte-identical** to a
//! single-process run of the same seed — the contract proven by
//! `tests/integration_shard.rs` and enforced in CI.
//!
//! Why byte-identity holds: every per-visit input (global rank,
//! simulated start time, per-profile seed, fault coins) is derived from
//! the global rank and the campaign seed, never from the stripe, and
//! each shard resolves the same fault seed the unsharded run would
//! (pinned in the segment header so the merge can verify it). Probe
//! results are pure in (domain, probe time, world, fault plan), so the
//! union of per-shard probe sets, sorted by domain, is exactly the
//! single run's probe vector.

use crate::config::LabConfig;
use crate::lab::Lab;
use std::io;
use std::path::{Path, PathBuf};
use topics_crawler::campaign::{run_campaign_stripe, CrawlTarget};
use topics_crawler::columnar::{ColumnarBuilder, ColumnarCampaign};
use topics_crawler::record::{CampaignOutcome, CAMPAIGN_SCHEMA_VERSION};
use topics_crawler::shard::{
    merge_segments, shard_token, tally_snapshot, Segment, SegmentHeader, ShardPlan, StreamingMerge,
    SEGMENT_VERSION,
};
use topics_net::seed;
use topics_obs::{merge_stripped, MergeRule, MetricsSnapshot, Obs, Trace};

/// How the two campaign phases combine across shard traces: visits are
/// striped disjointly (concatenate in shard order = rank order), probe
/// subtrees may repeat across shards (dedup by domain, which also
/// restores the single run's sorted slot order).
pub const MERGE_RULES: [(&str, MergeRule); 2] = [
    ("crawl", MergeRule::Concat),
    (
        "attestation-probe",
        MergeRule::DedupByField {
            key: "domain",
            count_field: "probes",
        },
    ),
];

/// Canonical segment file name for shard `shard` (0-based) of `shards`,
/// zero-padded so lexicographic directory order is shard order:
/// `shard-01-of-16.seg`.
pub fn segment_file_name(shard: usize, shards: usize) -> String {
    let width = shards.to_string().len();
    format!("shard-{:0width$}-of-{shards}.seg", shard + 1)
}

/// Run shard `shard` (0-based) of `shards` for `config` and return its
/// record segment. The caller's `obs` must have tracing enabled — the
/// segment carries the shard's stripped span trace — and must not have
/// opened any other trace phases (the merge expects exactly the
/// campaign's phase sequence).
///
/// The shard run derives the same fault seed the unsharded run would
/// (`config.campaign.fault_seed`, else `derive(world_seed, "faults")`)
/// and pins it into both the running config and the segment header, so
/// fault schedules match the single-process run and the merge can
/// verify every shard agreed. The probe memo cache is forced off: warm
/// hits would change the trace's `cache_hits` accounting and break
/// byte-identity.
pub fn run_shard(config: &LabConfig, shard: usize, shards: usize, obs: &Obs) -> Segment {
    assert!(shard < shards, "shard {shard} out of range 0..{shards}");
    assert!(
        obs.trace.is_enabled(),
        "run_shard needs a trace-enabled Obs (the segment records the stripped trace)"
    );
    let lab = Lab::new(config.clone());
    let num_sites = lab.world.targets().len();
    let plan = ShardPlan::new(shards, num_sites);
    let stripe = plan.stripe(shard);

    let world_seed = lab.world.seed();
    let fault_seed = lab
        .campaign
        .fault_seed
        .unwrap_or_else(|| seed::derive(world_seed, "faults"));
    let mut campaign = lab.campaign.clone();
    campaign.fault_seed = Some(fault_seed);
    campaign.probe_cache = false;

    let outcome = run_campaign_stripe(
        &lab.world,
        &campaign,
        stripe.clone(),
        Some(obs),
        |done, total| {
            obs.events.info(
                "progress",
                vec![
                    ("done".to_owned(), done.into()),
                    ("total".to_owned(), total.into()),
                ],
            );
        },
    );

    let metrics = tally_snapshot(&outcome);
    let trace = obs.trace.finish().stripped().spans;
    Segment {
        header: SegmentHeader {
            version: SEGMENT_VERSION,
            seed: world_seed,
            shard,
            shards,
            num_sites,
            stripe_start: stripe.start,
            stripe_end: stripe.end,
            token: shard_token(world_seed, shard),
            started: campaign.start,
            fault: format!("{:?}", campaign.fault),
            fault_seed,
        },
        sites: outcome.sites,
        allow_list: outcome.allow_list,
        probes: outcome.attestation_probes,
        metrics,
        trace,
    }
}

/// Write a segment to its canonical file name under `dir` and return
/// the path.
pub fn write_segment(dir: &Path, segment: &Segment) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(segment_file_name(
        segment.header.shard,
        segment.header.shards,
    ));
    std::fs::write(&path, segment.encode())?;
    Ok(path)
}

/// Read and integrity-check one segment file.
pub fn read_segment(path: &Path) -> Result<Segment, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading segment {}: {e}", path.display()))?;
    Segment::decode(&text).map_err(|e| format!("segment {}: {e}", path.display()))
}

/// Paths of every `*.seg` file directly under `dir`, sorted by name
/// (the canonical names make that shard order).
pub fn segment_paths(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "seg"))
        .collect();
    paths.sort();
    Ok(paths)
}

/// A merged campaign: the reassembled outcome, its authoritative
/// metrics snapshot (re-tallied from the merged records — per-shard
/// tallies are *not* additive for deduplicated probe series), and the
/// merged stripped trace.
#[derive(Debug, Clone)]
pub struct Merged {
    /// The reassembled campaign, byte-identical to a single-process run.
    pub outcome: CampaignOutcome,
    /// Tally snapshot of the merged outcome.
    pub metrics: MetricsSnapshot,
    /// Merged stripped trace, byte-identical to the single run's
    /// [`Trace::stripped`] view.
    pub trace: Trace,
}

/// Read every `*.seg` under `dir`, verify and merge them. Any decode
/// failure (truncation, checksum mismatch, malformed line) or merge
/// violation (missing/duplicate shard, stripe or token mismatch,
/// diverging duplicates) is a named error.
pub fn merge_dir(dir: &Path) -> Result<Merged, String> {
    let paths = segment_paths(dir)?;
    if paths.is_empty() {
        return Err(format!("no segment files (*.seg) in {}", dir.display()));
    }
    let segments: Vec<Segment> = paths
        .iter()
        .map(|p| read_segment(p))
        .collect::<Result<_, _>>()?;
    let outcome = merge_segments(&segments).map_err(|e| e.to_string())?;
    let traces: Vec<Trace> = segments
        .iter()
        .map(|s| Trace {
            spans: s.trace.clone(),
        })
        .collect();
    let trace =
        merge_stripped(&traces, &MERGE_RULES).map_err(|e| format!("merging traces: {e}"))?;
    let metrics = tally_snapshot(&outcome);
    Ok(Merged {
        outcome,
        metrics,
        trace,
    })
}

/// A merge streamed straight into the columnar writer: the encoded
/// store plus everything [`Merged`] carries.
#[derive(Debug)]
pub struct MergedColumnar {
    /// The merged campaign as an encoded columnar store — byte-identical
    /// to the store a single-process `--store columnar` crawl writes.
    pub store: ColumnarCampaign,
    /// The reassembled outcome (reconstructed from the store's arena,
    /// so equal domains share storage).
    pub outcome: CampaignOutcome,
    /// Tally snapshot of the merged outcome.
    pub metrics: MetricsSnapshot,
    /// Merged stripped trace.
    pub trace: Trace,
}

/// Merge every `*.seg` under `dir` by streaming each segment's sites
/// directly into a [`ColumnarBuilder`] — one decoded segment in memory
/// at a time, never the full `Vec<Segment>` that [`merge_dir`] holds.
///
/// Shard order is validated per segment by
/// [`topics_crawler::shard::StreamingMerge`] (the canonical zero-padded
/// file names make sorted directory order shard order). Because the
/// builder interns strings in first-use order of the same rank-order
/// site walk a single-process crawl performs, the resulting store is
/// byte-identical to the one `--store columnar` writes without
/// sharding.
pub fn merge_dir_columnar(dir: &Path) -> Result<MergedColumnar, String> {
    let paths = segment_paths(dir)?;
    if paths.is_empty() {
        return Err(format!("no segment files (*.seg) in {}", dir.display()));
    }
    let mut merge = StreamingMerge::default();
    let mut builder = ColumnarBuilder::new();
    let mut traces: Vec<Trace> = Vec::with_capacity(paths.len());
    for path in &paths {
        let mut segment = read_segment(path)?;
        traces.push(Trace {
            spans: std::mem::take(&mut segment.trace),
        });
        let sites = merge.accept(segment).map_err(|e| e.to_string())?;
        for site in &sites {
            builder.push_site(site);
        }
    }
    let (allow_list, probes, started) = merge.finish().map_err(|e| e.to_string())?;
    let store = builder.finish(CAMPAIGN_SCHEMA_VERSION, &allow_list, &probes, started);
    let outcome = store.to_outcome().map_err(|e| e.to_string())?;
    let trace =
        merge_stripped(&traces, &MERGE_RULES).map_err(|e| format!("merging traces: {e}"))?;
    let metrics = tally_snapshot(&outcome);
    Ok(MergedColumnar {
        store,
        outcome,
        metrics,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_obs() -> Obs {
        Obs::new().with_trace()
    }

    #[test]
    fn sharded_segments_merge_back_to_the_single_run() {
        let config = LabConfig::quick(91, 60).with_threads(2);
        let single_obs = shard_obs();
        let single = Lab::new(config.clone()).run_observed(&single_obs);
        let single_json = serde_json::to_string(&single.outcome).unwrap();
        let single_trace = single_obs.trace.finish().stripped();

        let dir = std::env::temp_dir().join(format!("topics-shard-core-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for shard in 0..3 {
            let segment = run_shard(&config, shard, 3, &shard_obs());
            write_segment(&dir, &segment).unwrap();
        }
        let merged = merge_dir(&dir).unwrap();
        assert_eq!(serde_json::to_string(&merged.outcome).unwrap(), single_json);
        assert_eq!(merged.trace, single_trace);
        assert_eq!(merged.metrics, crate::metrics_snapshot_of(&merged.outcome));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn columnar_merge_streams_to_the_single_run_store() {
        let config = LabConfig::quick(92, 60).with_threads(2);
        let single = Lab::new(config.clone()).run().outcome;
        let single_store = ColumnarCampaign::from_outcome(&single);

        let dir = std::env::temp_dir().join(format!("topics-shard-col-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for shard in 0..3 {
            let segment = run_shard(&config, shard, 3, &shard_obs());
            write_segment(&dir, &segment).unwrap();
        }
        let merged = merge_dir_columnar(&dir).unwrap();
        assert_eq!(
            merged.store.bytes(),
            single_store.bytes(),
            "streamed merge store must be byte-identical to the single-run store"
        );
        assert_eq!(
            serde_json::to_string(&merged.outcome).unwrap(),
            serde_json::to_string(&single).unwrap()
        );
        let batch = merge_dir(&dir).unwrap();
        assert_eq!(merged.metrics, batch.metrics);
        assert_eq!(merged.trace, batch.trace);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_file_names_sort_in_shard_order() {
        assert_eq!(segment_file_name(0, 4), "shard-1-of-4.seg");
        assert_eq!(segment_file_name(3, 4), "shard-4-of-4.seg");
        assert_eq!(segment_file_name(9, 16), "shard-10-of-16.seg");
        let mut names: Vec<String> = (0..16).map(|k| segment_file_name(k, 16)).collect();
        let sorted = {
            let mut s = names.clone();
            s.sort();
            s
        };
        assert_eq!(names, sorted, "zero-padding keeps shard order");
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn merge_dir_demands_segments() {
        let dir = std::env::temp_dir().join(format!("topics-shard-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = merge_dir(&dir).unwrap_err();
        assert!(err.contains("no segment files"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
