//! Bundle export: write a campaign's dataset and every reproduced
//! artefact to a directory.

use crate::lab::Evaluation;
use std::fs;
use std::io;
use std::path::Path;
use topics_analysis::dataset::{DatasetId, Datasets};
use topics_analysis::export as csv;
use topics_crawler::record::CampaignOutcome;

/// File names written by [`write_bundle`].
pub const BUNDLE_FILES: [&str; 13] = [
    "campaign.json",
    "report.txt",
    "comparison.txt",
    "calls.csv",
    "sites.csv",
    "table1.csv",
    "fig2_presence.csv",
    "fig3_fractions.csv",
    "fig5_questionable.csv",
    "fig6_geo.csv",
    "fig7_cmp.csv",
    "sec4_anomalous.csv",
    "sec3_timeline.csv",
];

/// Write the full artefact bundle for a campaign:
///
/// * `campaign.json` — the raw dataset (every visit, call and probe),
///   loadable back with [`load_campaign`];
/// * `report.txt` / `comparison.txt` — the rendered evaluation and the
///   paper-vs-measured table;
/// * one CSV per reproduced table/figure plus the raw calls/sites CSVs
///   and the enrolment timeline.
pub fn write_bundle(
    dir: &Path,
    outcome: &CampaignOutcome,
    eval: &Evaluation,
    full_scale: bool,
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let ds = Datasets::new(outcome);

    let json = serde_json::to_string(outcome).expect("campaign serialises");
    fs::write(dir.join("campaign.json"), json)?;
    fs::write(dir.join("report.txt"), eval.render_report())?;
    let rows = crate::compare::comparison_rows(eval, full_scale);
    fs::write(
        dir.join("comparison.txt"),
        crate::compare::render_comparison(&rows),
    )?;

    fs::write(dir.join("calls.csv"), csv::calls_csv(&ds))?;
    fs::write(dir.join("sites.csv"), csv::sites_csv(&ds))?;
    fs::write(dir.join("table1.csv"), csv::table1_csv(&eval.table1))?;
    fs::write(dir.join("fig2_presence.csv"), csv::presence_csv(&eval.fig2))?;
    fs::write(
        dir.join("fig3_fractions.csv"),
        csv::presence_csv(&eval.fig3),
    )?;
    fs::write(
        dir.join("fig5_questionable.csv"),
        csv::questionable_csv(&eval.fig5),
    )?;
    fs::write(dir.join("fig6_geo.csv"), csv::geo_csv(&eval.fig6))?;
    fs::write(dir.join("fig7_cmp.csv"), csv::cmp_csv(&eval.fig7))?;
    fs::write(
        dir.join("sec4_anomalous.csv"),
        csv::anomalous_csv(&eval.anomalous),
    )?;
    fs::write(
        dir.join("sec3_timeline.csv"),
        csv::timeline_csv(&eval.timeline),
    )?;
    Ok(())
}

/// Load a campaign dumped by [`write_bundle`].
pub fn load_campaign(path: &Path) -> io::Result<CampaignOutcome> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad campaign.json: {e}"),
        )
    })
}

/// Quick sanity accessor used by tests: dataset sizes of a loaded
/// campaign.
pub fn dataset_sizes(outcome: &CampaignOutcome) -> (usize, usize) {
    let ds = Datasets::new(outcome);
    (
        ds.len(DatasetId::BeforeAccept),
        ds.len(DatasetId::AfterAccept),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, Lab, LabConfig};

    #[test]
    fn bundle_round_trips() {
        let lab = Lab::new(LabConfig::quick(81, 200).with_threads(2));
        let outcome = lab.run();
        let eval = evaluate(&outcome);
        let dir = std::env::temp_dir().join(format!("topics-lab-test-{}", std::process::id()));
        write_bundle(&dir, &outcome, &eval, false).unwrap();
        for f in BUNDLE_FILES {
            let p = dir.join(f);
            assert!(p.exists(), "missing {f}");
            assert!(fs::metadata(&p).unwrap().len() > 0, "{f} is empty");
        }
        let back = load_campaign(&dir.join("campaign.json")).unwrap();
        assert_eq!(dataset_sizes(&back), dataset_sizes(&outcome));
        assert_eq!(back.allow_list, outcome.allow_list);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("topics-lab-garbage-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("campaign.json");
        fs::write(&p, "not json at all").unwrap();
        assert!(load_campaign(&p).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
