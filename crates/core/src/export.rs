//! Bundle export: write a campaign's dataset and every reproduced
//! artefact to a directory.

use crate::lab::Evaluation;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use topics_analysis::dataset::{DatasetId, Datasets};
use topics_analysis::export as csv;
use topics_crawler::columnar::{ColumnarCampaign, COLUMNAR_MAGIC};
use topics_crawler::record::CampaignOutcome;

/// The row-store file written by the JSON backend.
pub const CAMPAIGN_JSON_FILE: &str = "campaign.json";
/// The column-store file written by the columnar backend.
pub const CAMPAIGN_COLUMNAR_FILE: &str = "campaign.col";

/// Which on-disk representation a bundle's campaign dataset uses.
///
/// Both stores hold the identical dataset — [`load_campaign`] sniffs
/// the file's magic bytes, so every consumer (report, doctor, compare)
/// accepts either. `Json` stays the compatibility default; `Columnar`
/// is the interned struct-of-arrays layout in
/// [`topics_crawler::columnar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// `campaign.json` — serde row structs, human-greppable.
    #[default]
    Json,
    /// `campaign.col` — checksummed columnar sections, lazy readable.
    Columnar,
}

impl StoreKind {
    /// Parse a `--store` flag value.
    pub fn parse(s: &str) -> Option<StoreKind> {
        match s {
            "json" => Some(StoreKind::Json),
            "columnar" | "col" => Some(StoreKind::Columnar),
            _ => None,
        }
    }

    /// The campaign file name this store writes.
    pub fn campaign_file(self) -> &'static str {
        match self {
            StoreKind::Json => CAMPAIGN_JSON_FILE,
            StoreKind::Columnar => CAMPAIGN_COLUMNAR_FILE,
        }
    }
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StoreKind::Json => "json",
            StoreKind::Columnar => "columnar",
        })
    }
}

/// File names written by [`write_bundle`] with the default JSON store;
/// the columnar store swaps `campaign.json` for `campaign.col`.
pub const BUNDLE_FILES: [&str; 13] = [
    "campaign.json",
    "report.txt",
    "comparison.txt",
    "calls.csv",
    "sites.csv",
    "table1.csv",
    "fig2_presence.csv",
    "fig3_fractions.csv",
    "fig5_questionable.csv",
    "fig6_geo.csv",
    "fig7_cmp.csv",
    "sec4_anomalous.csv",
    "sec3_timeline.csv",
];

/// Write the full artefact bundle for a campaign:
///
/// * `campaign.json` or `campaign.col` (per `store`) — the raw dataset
///   (every visit, call and probe), loadable back with
///   [`load_campaign`];
/// * `report.txt` / `comparison.txt` — the rendered evaluation and the
///   paper-vs-measured table;
/// * one CSV per reproduced table/figure plus the raw calls/sites CSVs
///   and the enrolment timeline.
///
/// Every rendered artefact is computed from the in-memory outcome, so
/// the two stores produce byte-identical reports/CSVs — only the
/// campaign file differs.
pub fn write_bundle(
    dir: &Path,
    outcome: &CampaignOutcome,
    eval: &Evaluation,
    full_scale: bool,
    store: StoreKind,
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    match store {
        StoreKind::Json => {
            let json = serde_json::to_string(outcome).expect("campaign serialises");
            fs::write(dir.join(CAMPAIGN_JSON_FILE), json)?;
        }
        StoreKind::Columnar => {
            let col = ColumnarCampaign::from_outcome(outcome);
            fs::write(dir.join(CAMPAIGN_COLUMNAR_FILE), col.bytes())?;
        }
    }
    write_artefacts(dir, outcome, eval, full_scale)
}

/// Write every rendered artefact except the campaign file itself —
/// what [`write_bundle`] adds on top of the store. Used directly by
/// `merge --store columnar`, which already holds the streamed store
/// bytes and must not re-encode them.
pub fn write_artefacts(
    dir: &Path,
    outcome: &CampaignOutcome,
    eval: &Evaluation,
    full_scale: bool,
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let ds = Datasets::new(outcome);
    fs::write(dir.join("report.txt"), eval.render_report())?;
    let rows = crate::compare::comparison_rows(eval, full_scale);
    fs::write(
        dir.join("comparison.txt"),
        crate::compare::render_comparison(&rows),
    )?;

    fs::write(dir.join("calls.csv"), csv::calls_csv(&ds))?;
    fs::write(dir.join("sites.csv"), csv::sites_csv(&ds))?;
    fs::write(dir.join("table1.csv"), csv::table1_csv(&eval.table1))?;
    fs::write(dir.join("fig2_presence.csv"), csv::presence_csv(&eval.fig2))?;
    fs::write(
        dir.join("fig3_fractions.csv"),
        csv::presence_csv(&eval.fig3),
    )?;
    fs::write(
        dir.join("fig5_questionable.csv"),
        csv::questionable_csv(&eval.fig5),
    )?;
    fs::write(dir.join("fig6_geo.csv"), csv::geo_csv(&eval.fig6))?;
    fs::write(dir.join("fig7_cmp.csv"), csv::cmp_csv(&eval.fig7))?;
    fs::write(
        dir.join("sec4_anomalous.csv"),
        csv::anomalous_csv(&eval.anomalous),
    )?;
    fs::write(
        dir.join("sec3_timeline.csv"),
        csv::timeline_csv(&eval.timeline),
    )?;
    Ok(())
}

/// Load a campaign dumped by [`write_bundle`], from either store.
///
/// The backend is sniffed from the file's magic bytes, not its name:
/// a `TOPICCOL` header means the columnar decoder (section checksums
/// and schema verified on the way in), anything else is parsed as
/// JSON. Unknown future `schema_version`s are a typed refusal in both
/// paths rather than a misparse.
pub fn load_campaign(path: &Path) -> io::Result<CampaignOutcome> {
    let bytes = fs::read(path)?;
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    if bytes.starts_with(&COLUMNAR_MAGIC) {
        let col =
            ColumnarCampaign::decode(bytes).map_err(|e| bad(format!("bad campaign.col: {e}")))?;
        return col
            .to_outcome()
            .map_err(|e| bad(format!("bad campaign.col: {e}")));
    }
    let json = String::from_utf8(bytes).map_err(|e| bad(format!("bad campaign.json: {e}")))?;
    let outcome: CampaignOutcome =
        serde_json::from_str(&json).map_err(|e| bad(format!("bad campaign.json: {e}")))?;
    outcome
        .check_schema()
        .map_err(|e| bad(format!("bad campaign.json: {e}")))?;
    Ok(outcome)
}

/// The campaign file inside a bundle directory, whichever store wrote
/// it. Prefers `campaign.json` when both exist (the stores hold the
/// same dataset, and JSON is the compatibility reader).
pub fn resolve_campaign_file(dir: &Path) -> Option<PathBuf> {
    for name in [CAMPAIGN_JSON_FILE, CAMPAIGN_COLUMNAR_FILE] {
        let p = dir.join(name);
        if p.is_file() {
            return Some(p);
        }
    }
    None
}

/// Quick sanity accessor used by tests: dataset sizes of a loaded
/// campaign.
pub fn dataset_sizes(outcome: &CampaignOutcome) -> (usize, usize) {
    let ds = Datasets::new(outcome);
    (
        ds.len(DatasetId::BeforeAccept),
        ds.len(DatasetId::AfterAccept),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, Lab, LabConfig};

    #[test]
    fn bundle_round_trips() {
        let lab = Lab::new(LabConfig::quick(81, 200).with_threads(2));
        let outcome = lab.run();
        let eval = evaluate(&outcome);
        let dir = std::env::temp_dir().join(format!("topics-lab-test-{}", std::process::id()));
        write_bundle(&dir, &outcome, &eval, false, StoreKind::Json).unwrap();
        for f in BUNDLE_FILES {
            let p = dir.join(f);
            assert!(p.exists(), "missing {f}");
            assert!(fs::metadata(&p).unwrap().len() > 0, "{f} is empty");
        }
        assert_eq!(resolve_campaign_file(&dir), Some(dir.join("campaign.json")));
        let back = load_campaign(&dir.join("campaign.json")).unwrap();
        assert_eq!(dataset_sizes(&back), dataset_sizes(&outcome));
        assert_eq!(back.allow_list, outcome.allow_list);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn columnar_bundle_loads_back_identically() {
        let lab = Lab::new(LabConfig::quick(82, 150).with_threads(2));
        let outcome = lab.run().outcome;
        let eval = evaluate(&outcome);
        let dir = std::env::temp_dir().join(format!("topics-lab-coltest-{}", std::process::id()));
        write_bundle(&dir, &outcome, &eval, false, StoreKind::Columnar).unwrap();
        assert!(!dir.join("campaign.json").exists());
        let col_path = dir.join("campaign.col");
        assert_eq!(resolve_campaign_file(&dir), Some(col_path.clone()));
        let back = load_campaign(&col_path).unwrap();
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&outcome).unwrap(),
            "columnar load must reproduce the outcome exactly"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_kind_parses_flag_values() {
        assert_eq!(StoreKind::parse("json"), Some(StoreKind::Json));
        assert_eq!(StoreKind::parse("columnar"), Some(StoreKind::Columnar));
        assert_eq!(StoreKind::parse("col"), Some(StoreKind::Columnar));
        assert_eq!(StoreKind::parse("parquet"), None);
        assert_eq!(StoreKind::Json.campaign_file(), "campaign.json");
        assert_eq!(StoreKind::Columnar.campaign_file(), "campaign.col");
        assert_eq!(StoreKind::default(), StoreKind::Json);
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("topics-lab-garbage-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("campaign.json");
        fs::write(&p, "not json at all").unwrap();
        assert!(load_campaign(&p).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
