//! Run-health doctor: reconcile a saved campaign with its trace.
//!
//! The doctor cross-checks three independent records of the same run —
//! the measurement dataset (`campaign.json`), the authoritative metric
//! tally recomputed from it, and the span trace — and renders one
//! report: outcome partition, trace/metric reconciliation, critical
//! path, per-phase self/total time, worker utilization, retry
//! hot-spots, and the slowest visits. Any structural trace violation or
//! reconciliation mismatch makes the report unhealthy (the CLI exits
//! non-zero on those).

use crate::lab::metrics_snapshot_of;
use std::path::Path;
use topics_crawler::columnar::{ColumnarCampaign, SectionInfo};
use topics_crawler::record::{CampaignOutcome, OutcomeCounts};
use topics_obs::profile::{integrity, profile, Integrity, Profile};
use topics_obs::{FieldValue, Trace};

/// One trace-vs-metric reconciliation line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reconciliation {
    /// What is being compared (e.g. `visit spans vs sites_attempted_total`).
    pub check: String,
    /// Count seen in the trace.
    pub traced: u64,
    /// Count from the metric tally.
    pub tallied: u64,
    /// True when the counts agree under the check's rule.
    pub ok: bool,
}

/// One phase's allocation-balance check: the thread-local deltas its
/// sealed child spans attributed to themselves must fit inside the
/// phase's process-wide allocation window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocBalance {
    /// Phase span name.
    pub phase: String,
    /// Bytes the phase window recorded (process-wide, all threads).
    pub phase_bytes: u64,
    /// Sum of the direct children's attributed bytes.
    pub children_bytes: u64,
    /// True when `children_bytes` fits in `phase_bytes` within
    /// tolerance.
    pub ok: bool,
}

/// Slack allowed on the allocation balance: child scopes are sampled
/// with relaxed atomics while the window is racing, so a small
/// overshoot is measurement noise, not an accounting bug.
const ALLOC_BALANCE_TOLERANCE: f64 = 0.02;
const ALLOC_BALANCE_SLACK_BYTES: u64 = 64 * 1024;

/// The full doctor output for one campaign + trace pair.
#[derive(Debug, Clone)]
pub struct DoctorReport {
    /// Sites attempted (length of the outcome's site list).
    pub attempted: usize,
    /// Per-outcome site partition.
    pub outcomes: OutcomeCounts,
    /// Structural trace checks (orphans, duplicates, negative spans).
    pub integrity: Integrity,
    /// Trace-vs-metric count checks.
    pub reconciliation: Vec<Reconciliation>,
    /// Per-phase allocation-balance checks (empty when the trace has no
    /// allocation attribution).
    pub alloc_balance: Vec<AllocBalance>,
    /// Analyzer output: critical path, phases, workers, retries,
    /// slowest visits.
    pub profile: Profile,
    /// Shard-segment files verified (0 when the campaign has none).
    pub segments_checked: usize,
    /// Segment-integrity and shard-coverage violations (see
    /// [`verify_segments`]).
    pub segment_violations: Vec<String>,
    /// Columnar-store check, when `campaign.col` sits in the bundle
    /// (see [`verify_columnar`]).
    pub columnar: Option<ColumnarCheck>,
}

/// Integrity result of one `campaign.col` file.
#[derive(Debug, Clone)]
pub struct ColumnarCheck {
    /// Store size in bytes.
    pub bytes: u64,
    /// Per-section directory entries (empty when the header itself is
    /// unreadable).
    pub sections: Vec<SectionInfo>,
    /// Checksum, referential-integrity, and campaign-consistency
    /// violations.
    pub violations: Vec<String>,
}

/// Verify a `campaign.col` next to the loaded campaign, if one exists:
/// header and per-section FNV-1a checksums, intern referential
/// integrity (every id in range, no orphan strings, visit/call range
/// tiling — [`ColumnarCampaign::verify`]), and agreement with the
/// campaign the doctor loaded (the two stores must describe the same
/// dataset). Returns `None` when the directory has no columnar store.
pub fn verify_columnar(dir: &Path, outcome: &CampaignOutcome) -> Option<ColumnarCheck> {
    let path = dir.join(crate::export::CAMPAIGN_COLUMNAR_FILE);
    let bytes = std::fs::read(&path).ok()?;
    let mut check = ColumnarCheck {
        bytes: bytes.len() as u64,
        sections: Vec::new(),
        violations: Vec::new(),
    };
    let store = match ColumnarCampaign::decode(bytes) {
        Ok(s) => s,
        Err(e) => {
            check.violations.push(format!("campaign.col: {e}"));
            return Some(check);
        }
    };
    check.sections = store.section_map();
    if let Err(e) = store.verify() {
        check.violations.push(format!("campaign.col: {e}"));
        return Some(check);
    }
    match store.to_outcome() {
        Ok(col_outcome) => {
            if serde_json::to_string(&col_outcome).ok() != serde_json::to_string(outcome).ok() {
                check.violations.push(
                    "campaign.col does not describe the same dataset as the loaded campaign".into(),
                );
            }
        }
        Err(e) => check.violations.push(format!("campaign.col: {e}")),
    }
    Some(check)
}

/// Segment-integrity and shard-coverage checks over every `*.seg` file
/// in `dir`: each segment must decode (checksum, line count, version,
/// required sections), the set must merge (exact shard coverage of the
/// plan's rank space, matching tokens and headers), and the merged
/// outcome must reproduce the loaded `campaign.json` byte for byte.
/// Returns `(files checked, violations)`.
pub fn verify_segments(dir: &Path, outcome: &CampaignOutcome) -> (usize, Vec<String>) {
    let paths = match crate::shard::segment_paths(dir) {
        Ok(p) => p,
        Err(e) => return (0, vec![e]),
    };
    if paths.is_empty() {
        return (0, Vec::new());
    }
    let mut violations = Vec::new();
    let mut segments = Vec::new();
    for p in &paths {
        match crate::shard::read_segment(p) {
            Ok(s) => segments.push(s),
            Err(e) => violations.push(e),
        }
    }
    if !violations.is_empty() {
        return (paths.len(), violations);
    }
    match topics_crawler::shard::merge_segments(&segments) {
        Ok(merged) => {
            if merged.sites.len() != outcome.sites.len() {
                violations.push(format!(
                    "shard coverage gap: segments cover {} sites, campaign has {}",
                    merged.sites.len(),
                    outcome.sites.len()
                ));
            } else if serde_json::to_string(&merged).ok() != serde_json::to_string(outcome).ok() {
                violations
                    .push("merged segments do not reproduce campaign.json byte-for-byte".into());
            }
        }
        Err(e) => violations.push(e.to_string()),
    }
    (paths.len(), violations)
}

fn u64_field(trace: &Trace, span_name: &str, key: &str) -> u64 {
    trace
        .spans
        .iter()
        .filter(|s| s.name == span_name)
        .map(|s| match s.field(key) {
            Some(FieldValue::U64(v)) => *v,
            Some(FieldValue::I64(v)) => *v as u64,
            _ => 0,
        })
        .sum()
}

/// Diagnose a campaign against its trace. `top_n` bounds the
/// slowest-visit list.
pub fn diagnose(outcome: &CampaignOutcome, trace: &Trace, top_n: usize) -> DoctorReport {
    let snapshot = metrics_snapshot_of(outcome);
    let mut reconciliation = Vec::new();

    // Every attempted site opens exactly one visit span — strict.
    let visit_spans = trace.count_named("visit") as u64;
    let attempted = snapshot.counter("sites_attempted_total");
    reconciliation.push(Reconciliation {
        check: "visit spans == sites_attempted_total".to_owned(),
        traced: visit_spans,
        tallied: attempted,
        ok: visit_spans == attempted,
    });

    // Timed-out visits run the full page (tracing their Topics calls)
    // but contribute no VisitRecord, so the trace may legitimately hold
    // MORE calls than the dataset — never fewer.
    let call_spans = trace.count_named("topics-call") as u64;
    let recorded = snapshot.counter("topics_calls_recorded_total");
    reconciliation.push(Reconciliation {
        check: "topics-call spans >= topics_calls_recorded_total".to_owned(),
        traced: call_spans,
        tallied: recorded,
        ok: call_spans >= recorded,
    });

    // The probe tally counts every probed domain; the trace only spans
    // network probes, with cache hits summarized on the phase span.
    let probe_spans = trace.count_named("probe") as u64;
    let cache_hits = u64_field(trace, "attestation-probe", "cache_hits");
    let probes = snapshot.counter("attestation_probes_total");
    reconciliation.push(Reconciliation {
        check: "probe spans + cache_hits == attestation_probes_total".to_owned(),
        traced: probe_spans + cache_hits,
        tallied: probes,
        ok: probe_spans + cache_hits == probes,
    });

    DoctorReport {
        attempted: outcome.sites.len(),
        outcomes: outcome.outcome_counts(),
        integrity: integrity(trace),
        reconciliation,
        alloc_balance: alloc_balance(trace),
        profile: profile(trace, top_n),
        segments_checked: 0,
        segment_violations: Vec::new(),
        columnar: None,
    }
}

/// Check, for every phase span carrying allocation attribution, that
/// the self-attributed deltas of its direct children sum to no more
/// than the phase's process-wide window (within tolerance). Child
/// scopes are thread-local slices of the phase window, so a genuine
/// overshoot means double counting or a broken seal.
fn alloc_balance(trace: &Trace) -> Vec<AllocBalance> {
    let alloc_of = |s: &topics_obs::SpanRecord| match s.field("alloc_bytes") {
        Some(FieldValue::U64(v)) => Some(*v),
        Some(FieldValue::I64(v)) => Some(*v as u64),
        _ => None,
    };
    let mut out = Vec::new();
    for phase in trace.spans.iter().filter(|s| s.parent == Some(1) && !s.op) {
        let Some(phase_bytes) = alloc_of(phase) else {
            continue;
        };
        let children_bytes: u64 = trace
            .spans
            .iter()
            .filter(|s| s.parent == Some(phase.id))
            .filter_map(alloc_of)
            .sum();
        let budget = phase_bytes
            + (phase_bytes as f64 * ALLOC_BALANCE_TOLERANCE) as u64
            + ALLOC_BALANCE_SLACK_BYTES;
        out.push(AllocBalance {
            phase: phase.name.clone(),
            phase_bytes,
            children_bytes,
            ok: children_bytes <= budget,
        });
    }
    out
}

/// A trace-only health report: the structural and allocation checks of
/// [`diagnose`] without a campaign to reconcile against. This is what
/// `topics-lab doctor --trace FILE` (no `--campaign`) runs — e.g. over
/// a `simulate` trace, which has no campaign dataset at all.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Structural trace checks (orphans, duplicates, negative spans).
    pub integrity: Integrity,
    /// Per-phase allocation-balance checks (empty when the trace has no
    /// allocation attribution).
    pub alloc_balance: Vec<AllocBalance>,
    /// Analyzer output: critical path, phases, workers, retries.
    pub profile: Profile,
}

/// Diagnose a trace on its own: integrity, allocation balance, and the
/// span profile. `top_n` bounds the analyzer's slowest-span lists.
pub fn diagnose_trace(trace: &Trace, top_n: usize) -> TraceReport {
    TraceReport {
        integrity: integrity(trace),
        alloc_balance: alloc_balance(trace),
        profile: profile(trace, top_n),
    }
}

impl TraceReport {
    /// Every violation found: structural trace problems plus failed
    /// allocation-balance checks. Empty iff [`TraceReport::is_healthy`].
    pub fn violations(&self) -> Vec<String> {
        let mut out = self.integrity.violations();
        for b in self.alloc_balance.iter().filter(|b| !b.ok) {
            out.push(format!(
                "allocation balance failed: phase {} window {} B < children {} B",
                b.phase, b.phase_bytes, b.children_bytes
            ));
        }
        out
    }

    /// True when the trace is structurally sound and every
    /// allocation-balance check passed.
    pub fn is_healthy(&self) -> bool {
        self.integrity.is_clean() && self.alloc_balance.iter().all(|b| b.ok)
    }

    /// Render the report as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Doctor: trace health (no campaign) ==\n");
        out.push_str(&format!(
            "integrity: {}\n",
            if self.integrity.is_clean() {
                "clean"
            } else {
                "VIOLATIONS"
            }
        ));
        out.push('\n');

        out.push_str("== Phases (simulated unless noted) ==\n");
        for p in &self.profile.phases {
            out.push_str(&format!(
                "{:<18} total {:>9} ms  self {:>9} ms{}\n",
                p.name,
                p.total_ms,
                p.self_ms,
                if p.simulated { "" } else { "  (wall)" },
            ));
        }
        out.push('\n');

        out.push_str("== Allocation balance ==\n");
        if self.alloc_balance.is_empty() {
            out.push_str("no allocation attribution in trace (record with --alloc-stats)\n");
        } else {
            for b in &self.alloc_balance {
                out.push_str(&format!(
                    "[{}] {:<18} phase window {:>12} B  children {:>12} B\n",
                    if b.ok { "ok" } else { "FAIL" },
                    b.phase,
                    b.phase_bytes,
                    b.children_bytes,
                ));
            }
        }

        let violations = self.violations();
        if !violations.is_empty() {
            out.push('\n');
            out.push_str("== Violations ==\n");
            for v in &violations {
                out.push_str(&format!("- {v}\n"));
            }
        }
        out
    }
}

impl DoctorReport {
    /// Fold in the result of [`verify_segments`] (the CLI runs it when
    /// the campaign directory holds `*.seg` files).
    #[must_use]
    pub fn with_segment_checks(mut self, checked: usize, violations: Vec<String>) -> DoctorReport {
        self.segments_checked = checked;
        self.segment_violations = violations;
        self
    }

    /// Fold in the result of [`verify_columnar`] (the CLI runs it when
    /// the campaign directory holds a `campaign.col`).
    #[must_use]
    pub fn with_columnar_check(mut self, check: ColumnarCheck) -> DoctorReport {
        self.columnar = Some(check);
        self
    }

    /// Every violation found: structural trace problems plus failed
    /// reconciliation checks. Empty iff [`DoctorReport::is_healthy`].
    pub fn violations(&self) -> Vec<String> {
        let mut out = self.integrity.violations();
        out.extend(self.segment_violations.iter().cloned());
        if let Some(col) = &self.columnar {
            out.extend(col.violations.iter().cloned());
        }
        for r in self.reconciliation.iter().filter(|r| !r.ok) {
            out.push(format!(
                "reconciliation failed: {} (trace {}, tally {})",
                r.check, r.traced, r.tallied
            ));
        }
        for b in self.alloc_balance.iter().filter(|b| !b.ok) {
            out.push(format!(
                "allocation balance failed: phase {} window {} B < children {} B",
                b.phase, b.phase_bytes, b.children_bytes
            ));
        }
        out
    }

    /// True when the trace is structurally sound and every
    /// reconciliation and allocation-balance check passed.
    pub fn is_healthy(&self) -> bool {
        self.integrity.is_clean()
            && self.reconciliation.iter().all(|r| r.ok)
            && self.alloc_balance.iter().all(|b| b.ok)
            && self.segment_violations.is_empty()
            && self
                .columnar
                .as_ref()
                .map_or(true, |c| c.violations.is_empty())
    }

    /// Render the report as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Doctor: run health ==\n");
        out.push_str(&format!(
            "sites: {} attempted — {} complete, {} degraded, {} failed\n",
            self.attempted, self.outcomes.complete, self.outcomes.degraded, self.outcomes.failed,
        ));
        out.push('\n');

        out.push_str("== Trace/metric reconciliation ==\n");
        for r in &self.reconciliation {
            out.push_str(&format!(
                "[{}] {} (trace {}, tally {})\n",
                if r.ok { "ok" } else { "FAIL" },
                r.check,
                r.traced,
                r.tallied,
            ));
        }
        out.push('\n');

        out.push_str("== Phases (simulated unless noted) ==\n");
        for p in &self.profile.phases {
            out.push_str(&format!(
                "{:<18} total {:>9} ms  self {:>9} ms{}\n",
                p.name,
                p.total_ms,
                p.self_ms,
                if p.simulated { "" } else { "  (wall)" },
            ));
        }
        out.push('\n');

        out.push_str("== Critical path ==\n");
        for hop in &self.profile.critical_path {
            let label = if hop.label.is_empty() {
                String::new()
            } else {
                format!(" {}", hop.label)
            };
            out.push_str(&format!(
                "  {}{} [{}..{} ms]\n",
                hop.name, label, hop.start_ms, hop.end_ms,
            ));
        }
        out.push('\n');

        out.push_str("== Worker utilization ==\n");
        let idle = self.profile.idle_fractions();
        if idle.is_empty() {
            out.push_str("no worker spans in trace (stripped or single-pass run)\n");
        } else {
            for (phase, frac) in &idle {
                out.push_str(&format!("{phase:<18} idle fraction {:.1}%\n", frac * 100.0));
            }
            for w in &self.profile.workers {
                out.push_str(&format!(
                    "  {} worker {}: {} items, busy {} µs of {} µs\n",
                    w.phase, w.worker, w.items, w.busy_us, w.span_us,
                ));
            }
        }
        out.push('\n');

        out.push_str("== Allocation balance ==\n");
        if self.alloc_balance.is_empty() {
            out.push_str("no allocation attribution in trace (run with --alloc-stats)\n");
        } else {
            for b in &self.alloc_balance {
                out.push_str(&format!(
                    "[{}] {:<18} phase window {:>12} B  children {:>12} B\n",
                    if b.ok { "ok" } else { "FAIL" },
                    b.phase,
                    b.phase_bytes,
                    b.children_bytes,
                ));
            }
        }
        out.push('\n');

        if self.segments_checked > 0 {
            out.push_str("== Shard segments ==\n");
            if self.segment_violations.is_empty() {
                out.push_str(&format!(
                    "[ok] {} segment file(s): checksums verified, shard coverage complete, merge reproduces campaign.json\n",
                    self.segments_checked,
                ));
            } else {
                for v in &self.segment_violations {
                    out.push_str(&format!("[FAIL] {v}\n"));
                }
            }
            out.push('\n');
        }

        if let Some(col) = &self.columnar {
            out.push_str("== Columnar store ==\n");
            if col.violations.is_empty() {
                out.push_str(&format!(
                    "[ok] campaign.col ({} B): header + section checksums verified, intern table referentially intact, dataset matches the loaded campaign\n",
                    col.bytes,
                ));
            } else {
                for v in &col.violations {
                    out.push_str(&format!("[FAIL] {v}\n"));
                }
            }
            for s in &col.sections {
                out.push_str(&format!(
                    "  section {:<8} {:>10} B  fnv1a {:016x}\n",
                    s.name, s.len, s.fnv1a,
                ));
            }
            out.push('\n');
        }

        out.push_str("== Retry hot-spots ==\n");
        if self.profile.retry_clusters.is_empty() {
            out.push_str("no retries recorded\n");
        } else {
            for c in &self.profile.retry_clusters {
                out.push_str(&format!(
                    "window @{:>9} ms: {} retries ({})\n",
                    c.window_start_ms,
                    c.retries,
                    c.hosts.join(", "),
                ));
            }
        }
        out.push('\n');

        out.push_str("== Slowest visits ==\n");
        for v in &self.profile.slowest_visits {
            out.push_str(&format!(
                "{:<28} rank {:>5}  {:>7} ms  (dominant: {} {} ms)\n",
                v.domain, v.rank, v.duration_ms, v.dominant, v.dominant_ms,
            ));
        }

        let violations = self.violations();
        if !violations.is_empty() {
            out.push('\n');
            out.push_str("== Violations ==\n");
            for v in &violations {
                out.push_str(&format!("- {v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabConfig;
    use topics_obs::Obs;

    fn traced_run() -> (CampaignOutcome, Trace) {
        let obs = Obs::new().with_trace();
        let lab = crate::Lab::new(LabConfig::quick(31, 40).with_threads(2));
        let run = lab.run_observed(&obs);
        (run.outcome, obs.trace.finish())
    }

    #[test]
    fn healthy_run_reconciles_and_renders() {
        let (outcome, trace) = traced_run();
        let report = diagnose(&outcome, &trace, 5);
        assert!(report.is_healthy(), "violations: {:?}", report.violations());
        assert_eq!(report.attempted, 40);
        assert_eq!(report.reconciliation.len(), 3);
        let text = report.render();
        for needle in [
            "Doctor: run health",
            "Trace/metric reconciliation",
            "Critical path",
            "Worker utilization",
            "Slowest visits",
        ] {
            assert!(text.contains(needle), "missing section {needle}");
        }
        assert!(!text.contains("FAIL"));
        assert!(!text.contains("Violations"));
    }

    #[test]
    fn corrupted_trace_fails_doctor() {
        let (outcome, mut trace) = traced_run();
        // Inject an orphan span and drop a visit span.
        let visit_idx = trace
            .spans
            .iter()
            .position(|s| s.name == "visit")
            .expect("trace has visits");
        trace.spans[visit_idx].parent = Some(999_999);
        let report = diagnose(&outcome, &trace, 5);
        assert!(!report.is_healthy());
        assert!(report
            .violations()
            .iter()
            .any(|v| v.contains("orphan span")));
        assert!(report.render().contains("Violations"));
    }

    #[test]
    fn allocation_imbalance_fails_doctor() {
        let (outcome, mut trace) = traced_run();
        // Without attribution the check list is empty and healthy.
        let clean = diagnose(&outcome, &trace, 5);
        assert!(clean.alloc_balance.is_empty());
        assert!(clean.render().contains("no allocation attribution"));

        // Forge an imbalance: the crawl window claims 1 kB while one
        // child visit claims 10 MB.
        let crawl_id = trace
            .spans
            .iter()
            .find(|s| s.name == "crawl")
            .expect("crawl phase span")
            .id;
        let mut tagged_child = false;
        for s in trace.spans.iter_mut() {
            if s.name == "crawl" {
                s.fields
                    .push(("alloc_bytes".to_owned(), FieldValue::U64(1_000)));
            } else if !tagged_child && s.parent == Some(crawl_id) && s.name == "visit" {
                s.fields
                    .push(("alloc_bytes".to_owned(), FieldValue::U64(10_000_000)));
                tagged_child = true;
            }
        }
        assert!(tagged_child, "found a visit child to tag");
        let report = diagnose(&outcome, &trace, 5);
        assert_eq!(report.alloc_balance.len(), 1);
        assert!(!report.is_healthy());
        assert!(report
            .violations()
            .iter()
            .any(|v| v.contains("allocation balance")));
        assert!(report.render().contains("== Allocation balance =="));
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn balanced_allocation_passes_doctor() {
        let (outcome, mut trace) = traced_run();
        let crawl_id = trace
            .spans
            .iter()
            .find(|s| s.name == "crawl")
            .expect("crawl phase span")
            .id;
        // Window 1 MB, children well inside it.
        for s in trace.spans.iter_mut() {
            if s.name == "crawl" {
                s.fields
                    .push(("alloc_bytes".to_owned(), FieldValue::U64(1 << 20)));
            } else if s.parent == Some(crawl_id) && s.name == "visit" {
                s.fields
                    .push(("alloc_bytes".to_owned(), FieldValue::U64(4_096)));
            }
        }
        let report = diagnose(&outcome, &trace, 5);
        assert_eq!(report.alloc_balance.len(), 1);
        assert!(report.is_healthy(), "violations: {:?}", report.violations());
        assert!(report.alloc_balance[0].children_bytes > 0);
    }

    #[test]
    fn segment_checks_flow_into_the_report() {
        let config = LabConfig::quick(33, 40).with_threads(2);
        let dir = std::env::temp_dir().join(format!("topics-doctor-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut paths = Vec::new();
        for shard in 0..2 {
            let segment = crate::shard::run_shard(&config, shard, 2, &Obs::new().with_trace());
            paths.push(crate::shard::write_segment(&dir, &segment).unwrap());
        }
        let merged = crate::shard::merge_dir(&dir).unwrap();

        let (checked, violations) = verify_segments(&dir, &merged.outcome);
        assert_eq!(checked, 2);
        assert!(violations.is_empty(), "{violations:?}");
        let report =
            diagnose(&merged.outcome, &merged.trace, 5).with_segment_checks(checked, violations);
        assert!(report.is_healthy(), "violations: {:?}", report.violations());
        assert!(report.render().contains("== Shard segments =="));
        assert!(report.render().contains("[ok] 2 segment file(s)"));

        // A campaign that does not match the segments is a coverage gap.
        let mut short = merged.outcome.clone();
        short.sites.pop();
        let (_, violations) = verify_segments(&dir, &short);
        assert!(
            violations.iter().any(|v| v.contains("coverage gap")),
            "{violations:?}"
        );

        // Flip one byte in a segment (still valid JSON, so only the
        // checksum can catch it): the check names the file.
        let text = std::fs::read_to_string(&paths[0]).unwrap();
        std::fs::write(&paths[0], text.replacen("\"rank\":0", "\"rank\":9", 1)).unwrap();
        let (checked, violations) = verify_segments(&dir, &merged.outcome);
        assert_eq!(checked, 2);
        assert!(
            violations.iter().any(|v| v.contains("checksum mismatch")),
            "{violations:?}"
        );
        let report =
            diagnose(&merged.outcome, &merged.trace, 5).with_segment_checks(checked, violations);
        assert!(!report.is_healthy());
        assert!(report.render().contains("[FAIL]"));

        // Truncation is named too.
        std::fs::write(&paths[0], &text[..text.len() / 2]).unwrap();
        let (_, violations) = verify_segments(&dir, &merged.outcome);
        assert!(
            violations.iter().any(|v| v.contains("truncated")),
            "{violations:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn columnar_store_checks_flow_into_the_report() {
        let (outcome, trace) = traced_run();
        let dir = std::env::temp_dir().join(format!("topics-doctor-col-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // No store, no check.
        assert!(verify_columnar(&dir, &outcome).is_none());

        // A healthy store validates and lists every section.
        let store = ColumnarCampaign::from_outcome(&outcome);
        let path = dir.join(crate::export::CAMPAIGN_COLUMNAR_FILE);
        std::fs::write(&path, store.bytes()).unwrap();
        let check = verify_columnar(&dir, &outcome).unwrap();
        assert!(check.violations.is_empty(), "{:?}", check.violations);
        assert_eq!(check.sections.len(), 8);
        assert_eq!(check.bytes, store.bytes().len() as u64);
        let report = diagnose(&outcome, &trace, 5).with_columnar_check(check);
        assert!(report.is_healthy(), "violations: {:?}", report.violations());
        let text = report.render();
        assert!(text.contains("== Columnar store =="));
        assert!(text.contains("[ok] campaign.col"));
        assert!(text.contains("section strings"));

        // A store describing a different campaign is a violation.
        let mut short = outcome.clone();
        short.sites.pop();
        let check = verify_columnar(&dir, &short).unwrap();
        assert!(
            check.violations.iter().any(|v| v.contains("same dataset")),
            "{:?}",
            check.violations
        );
        let report = diagnose(&outcome, &trace, 5).with_columnar_check(check);
        assert!(!report.is_healthy());
        assert!(report.render().contains("[FAIL]"));

        // A flipped payload byte is a named section-checksum violation.
        let mut bytes = store.bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let check = verify_columnar(&dir, &outcome).unwrap();
        assert!(
            check.violations.iter().any(|v| v.contains("checksum")),
            "{:?}",
            check.violations
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_visit_span_breaks_reconciliation() {
        let (outcome, mut trace) = traced_run();
        let visit_idx = trace
            .spans
            .iter()
            .position(|s| s.name == "visit")
            .expect("trace has visits");
        trace.spans[visit_idx].name = "not-a-visit".to_owned();
        let report = diagnose(&outcome, &trace, 5);
        assert!(!report.is_healthy());
        assert!(report
            .violations()
            .iter()
            .any(|v| v.contains("sites_attempted_total")));
    }
}
